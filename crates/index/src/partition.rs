//! A single chunk-index partition, RAM-resident or disk-backed.
//!
//! Both index designs are built from partitions: the monolithic baseline is
//! one big partition; the application-aware index is one partition per
//! [`AppType`](aadedupe_filetype::AppType). A partition has two storage
//! modes behind one API:
//!
//! * **Resident** ([`IndexPartition::new`]) — the original design: a hash
//!   map guarded by a [`parking_lot::Mutex`] plus an
//!   [`LruSet`](crate::lru::LruSet) that *models* which fingerprints would
//!   be RAM-resident if the index were disk-backed, classifying each
//!   lookup as a RAM hit or a (modelled) disk read for the throughput and
//!   energy models.
//! * **Disk-backed** ([`IndexPartition::disk_backed`]) — the real thing:
//!   a bounded write-back cache (the same `LruSet` drives eviction) in
//!   front of sorted on-disk [`segment`](crate::segment)s, with a
//!   [`CuckooFilter`](crate::filter::CuckooFilter) existence prefilter so
//!   negative lookups — the overwhelmingly-common case in a backup
//!   stream — are answered from RAM with zero disk probes. RAM-vs-disk
//!   hit accounting is *measured*, not modelled.
//!
//! Both modes are exact key-value stores: dedup decisions, reference
//! counts, and entry values are bit-identical between them (the
//! resident↔disk differential suite pins this); only the
//! [`IndexStats`] classification differs.
//!
//! Disk-backed IO keeps the partition API infallible: any segment
//! read/write failure poisons the partition (sticky
//! [`IndexPartition::io_error`]) and the operation degrades safely
//! (a failed probe reports "absent", which can only cause duplicate
//! storage, never corruption). The engine checks `io_error()` before
//! committing a session, so no state derived from failed IO reaches the
//! cloud.

use crate::filter::CuckooFilter;
use crate::lru::LruSet;
use crate::segment::{fnv1a, merge_segments, Segment, SegmentError, TMP_SUFFIX};
use crate::{ChunkEntry, IndexStats};
use aadedupe_hashing::Fingerprint;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// Segment-count ceiling: a flush that leaves more than this many
/// segments triggers a full streaming compaction.
const MAX_SEGMENTS: usize = 8;

/// File name of the persisted partition manifest (filter + segment
/// metadata) written by [`IndexPartition::persist`].
const MANIFEST_NAME: &str = "manifest.aamft";

/// Magic header identifying a partition manifest file.
const MANIFEST_MAGIC: &[u8; 6] = b"AAMFT\x01";

/// Rough per-entry RAM cost (key + slot + map/LRU overhead) used by
/// [`RamFootprint::approx_bytes`]. Deliberately generous.
const ENTRY_COST: usize = 128;

/// How a lookup was served by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Fingerprint found, served from RAM (cache hit).
    HitRam(ChunkEntry),
    /// Fingerprint found, required a disk probe.
    HitDisk(ChunkEntry),
    /// Fingerprint absent, absence determined in RAM (resident table,
    /// cached tombstone, or existence-filter short-circuit).
    MissRam,
    /// Fingerprint absent, a disk probe was needed to prove it.
    MissDisk,
}

impl LookupOutcome {
    /// The entry, if the lookup hit.
    pub fn entry(&self) -> Option<ChunkEntry> {
        match self {
            LookupOutcome::HitRam(e) | LookupOutcome::HitDisk(e) => Some(*e),
            _ => None,
        }
    }

    /// Whether the storage layer charged a disk read.
    pub fn touched_disk(&self) -> bool {
        matches!(self, LookupOutcome::HitDisk(_) | LookupOutcome::MissDisk)
    }
}

/// Per-lookup storage-layer observations, for the observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeTrace {
    /// The existence filter answered "definitely absent" with no disk IO.
    pub filter_short_circuit: bool,
    /// The filter said "maybe" but disk found nothing — a false positive.
    pub filter_false_positive: bool,
    /// Number of segment probes performed (resident mode models this as
    /// 0 or 1).
    pub disk_probes: u64,
}

/// A point-in-time measurement of the RAM a partition actually holds —
/// the quantity the sub-RAM index bench asserts stays within budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RamFootprint {
    /// Entries resident in RAM (cache slots, or the whole map when
    /// resident).
    pub cache_entries: usize,
    /// Configured cache budget (entries).
    pub cache_capacity: usize,
    /// Bytes held by the existence filter's slot table.
    pub filter_bytes: usize,
    /// Bytes held by segment fence indexes.
    pub fence_bytes: usize,
    /// Number of on-disk segments.
    pub segments: usize,
    /// Rough total bytes: `cache_entries * ENTRY_COST + filter + fences`.
    pub approx_bytes: usize,
}

impl RamFootprint {
    /// Accumulates another partition's footprint into this one.
    pub fn merge(&mut self, other: &RamFootprint) {
        self.cache_entries += other.cache_entries;
        self.cache_capacity += other.cache_capacity;
        self.filter_bytes += other.filter_bytes;
        self.fence_bytes += other.fence_bytes;
        self.segments += other.segments;
        self.approx_bytes += other.approx_bytes;
    }
}

/// One write-back cache slot. `entry == None` is a tombstone shadowing an
/// on-disk record (or marking an in-flight delete).
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    entry: Option<ChunkEntry>,
    /// Slot differs from disk state and must be flushed before eviction.
    dirty: bool,
    /// A (possibly stale) record for this fingerprint exists in some
    /// segment, so deleting it requires a tombstone.
    on_disk: bool,
}

/// Real disk-backed storage: bounded cache + existence filter + segments.
struct DiskStore {
    dir: PathBuf,
    cache: HashMap<Fingerprint, CacheSlot>,
    lru: LruSet<Fingerprint>,
    filter: CuckooFilter,
    /// Oldest → newest; newer segments shadow older ones.
    segments: Vec<Segment>,
    next_seq: u64,
    /// Exact live-entry count (cache ∪ segments, tombstones excluded).
    live: u64,
    /// Directory created + stale files swept (done lazily on first
    /// flush so construction stays infallible).
    initialized: bool,
    /// Sticky first IO error; see the module docs for the degradation
    /// contract.
    error: Option<String>,
}

impl DiskStore {
    fn new(budget: usize, dir: PathBuf) -> Self {
        DiskStore {
            dir,
            cache: HashMap::new(),
            // A zero-capacity cache would make the write-back cache
            // unbounded (LruSet stores nothing at capacity 0); one slot
            // is the honest minimum.
            lru: LruSet::new(budget.max(1)),
            filter: CuckooFilter::with_capacity(1024),
            segments: Vec::new(),
            next_seq: 1,
            live: 0,
            initialized: false,
            error: None,
        }
    }

    fn poison(&mut self, e: &SegmentError) {
        if self.error.is_none() {
            self.error = Some(e.to_string());
        }
    }

    /// Creates the partition directory and sweeps stale files from a
    /// previous process (segments are session-local; the cloud snapshot
    /// is the durable store).
    fn init(&mut self) -> Result<(), SegmentError> {
        if self.initialized {
            return Ok(());
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| SegmentError::Io(format!("create {}: {e}", self.dir.display())))?;
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| SegmentError::Io(format!("read {}: {e}", self.dir.display())))?;
        let mut stale: Vec<PathBuf> =
            entries.flatten().map(|d| d.path()).filter(|p| p.is_file()).collect();
        stale.sort_unstable();
        for p in stale {
            std::fs::remove_file(&p)
                .map_err(|e| SegmentError::Io(format!("sweep {}: {e}", p.display())))?;
        }
        self.initialized = true;
        Ok(())
    }

    /// Probes segments newest→oldest. Returns the shadowing record (live
    /// or tombstone) and how many segments were consulted. IO errors
    /// poison the store and read as "absent".
    fn probe(&mut self, fp: &Fingerprint) -> (Option<Option<ChunkEntry>>, u64) {
        let mut probes = 0u64;
        let mut found = None;
        let mut err = None;
        for seg in self.segments.iter_mut().rev() {
            probes += 1;
            match seg.get(fp) {
                Ok(Some(rec)) => {
                    found = Some(rec);
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = err {
            self.poison(&e);
        }
        (found, probes)
    }

    /// Whether `fp` currently maps to a live entry (no refcount or stats
    /// side effects).
    fn exists(&mut self, fp: &Fingerprint) -> bool {
        if let Some(slot) = self.cache.get(fp) {
            return slot.entry.is_some();
        }
        if !self.filter.contains(fp) {
            return false;
        }
        matches!(self.probe(fp).0, Some(Some(_)))
    }

    /// Writes every dirty slot as one new sorted segment, then marks the
    /// flushed slots clean (dropping flushed tombstones — the segment now
    /// carries them).
    fn flush_dirty(&mut self) -> Result<(), SegmentError> {
        let mut dirty: Vec<(Fingerprint, Option<ChunkEntry>)> = Vec::new();
        let mut drop_keys: Vec<Fingerprint> = Vec::new();
        for (f, s) in &self.cache {
            if !s.dirty {
                continue;
            }
            if s.entry.is_none() && !s.on_disk {
                // A tombstone that never reached disk shadows nothing.
                drop_keys.push(*f);
                continue;
            }
            dirty.push((*f, s.entry));
        }
        dirty.sort_unstable_by_key(|(f, _)| *f);
        if !dirty.is_empty() {
            self.init()?;
            let seq = self.next_seq;
            let seg = Segment::write(&self.dir, seq, dirty.iter().copied())?;
            self.next_seq += 1;
            self.segments.push(seg);
        }
        for (f, _) in &dirty {
            if let Some(s) = self.cache.get_mut(f) {
                if s.entry.is_none() {
                    drop_keys.push(*f);
                } else {
                    s.dirty = false;
                    s.on_disk = true;
                }
            }
        }
        drop_keys.sort_unstable();
        for f in &drop_keys {
            self.cache.remove(f);
            self.lru.remove(f);
        }
        if self.segments.len() > MAX_SEGMENTS {
            self.compact()?;
        }
        Ok(())
    }

    /// Full streaming merge of all segments into one, dropping
    /// tombstones (safe: nothing older remains to shadow; cache
    /// tombstones still overlay the result).
    fn compact(&mut self) -> Result<(), SegmentError> {
        if self.segments.len() <= 1 {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let merged = merge_segments(&self.dir, seq, &mut self.segments, true)?;
        let old = std::mem::replace(&mut self.segments, vec![merged]);
        for seg in old {
            seg.remove()?;
        }
        Ok(())
    }

    /// Admits a slot, evicting (and if necessary flushing) the LRU
    /// victim to stay within budget. The admitted key itself is never
    /// the victim. IO failures poison the store; the cache then
    /// temporarily exceeds budget rather than losing the dirty slot.
    fn admit(&mut self, fp: Fingerprint, slot: CacheSlot) {
        self.cache.insert(fp, slot);
        if let Some(victim) = self.lru.insert(fp) {
            if self.cache.get(&victim).is_some_and(|s| s.dirty) {
                if let Err(e) = self.flush_dirty() {
                    self.poison(&e);
                    // Poisoned: keep the dirty victim cached (untracked
                    // by the LRU) rather than losing state; the engine
                    // refuses to commit a poisoned index.
                    return;
                }
            }
            self.cache.remove(&victim);
        }
    }

    /// Inserts into the filter, transparently rebuilding it at a larger
    /// capacity from the authoritative key set when it overflows. The
    /// key being inserted must already be resident in the cache.
    fn filter_insert(&mut self, fp: &Fingerprint) {
        if self.filter.insert(fp).is_ok() {
            return;
        }
        if let Err(e) = self.rebuild_filter() {
            self.poison(&e);
        }
    }

    /// Rebuilds the filter from the authoritative live-key set (cache
    /// overlay on a freshly full-compacted segment), doubling capacity
    /// until everything fits. O(cache + filter) RAM.
    fn rebuild_filter(&mut self) -> Result<(), SegmentError> {
        self.compact()?;
        let mut cap = ((self.live as usize) + 2)
            .next_power_of_two()
            .max(self.filter.capacity().saturating_mul(2));
        'grow: loop {
            let mut f = CuckooFilter::with_capacity(cap);
            let mut cache_keys: Vec<Fingerprint> = self
                .cache
                .iter()
                .filter(|(_, s)| s.entry.is_some())
                .map(|(k, _)| *k)
                .collect();
            cache_keys.sort_unstable();
            for k in &cache_keys {
                if f.insert(k).is_err() {
                    cap = cap.saturating_mul(2);
                    continue 'grow;
                }
            }
            if let Some(seg) = self.segments.first_mut() {
                let mut s = seg.stream()?;
                while let Some((k, rec)) = s.next_record()? {
                    if rec.is_none() || self.cache.contains_key(&k) {
                        continue;
                    }
                    if f.insert(&k).is_err() {
                        cap = cap.saturating_mul(2);
                        continue 'grow;
                    }
                }
            }
            self.filter = f;
            return Ok(());
        }
    }

    /// Drops all cache, filter, and segment state (files included) and
    /// replaces it with exactly `entries` (sorted, deduped) — the
    /// reconciliation/bulk-load primitive.
    fn replace_all(&mut self, entries: &[(Fingerprint, ChunkEntry)]) -> Result<(), SegmentError> {
        self.cache.clear();
        let budget = self.lru.capacity();
        self.lru = LruSet::new(budget);
        let old = std::mem::take(&mut self.segments);
        for seg in old {
            seg.remove()?;
        }
        self.live = entries.len() as u64;
        let mut filter = CuckooFilter::with_capacity(
            (entries.len() + 2).next_power_of_two().max(1024),
        );
        for (f, _) in entries {
            if filter.insert(f).is_err() {
                // Geometric headroom above: a second overflow would need
                // pathological collisions; grow once more and retry all.
                filter = CuckooFilter::with_capacity(entries.len().saturating_mul(4).max(2048));
                for (g, _) in entries {
                    if filter.insert(g).is_err() {
                        return Err(SegmentError::Io(
                            "existence filter rebuild overflowed twice".to_string(),
                        ));
                    }
                }
                break;
            }
        }
        self.filter = filter;
        if !entries.is_empty() {
            self.init()?;
            let seq = self.next_seq;
            let seg =
                Segment::write(&self.dir, seq, entries.iter().map(|(f, e)| (*f, Some(*e))))?;
            self.next_seq += 1;
            self.segments.push(seg);
        }
        Ok(())
    }

    /// Full merged enumeration: segments oldest→newest, overlaid with
    /// the cache. O(live) memory — used only by the snapshot codec,
    /// which is O(live) by contract anyway.
    fn dump(&mut self) -> Vec<(Fingerprint, ChunkEntry)> {
        let mut merged: BTreeMap<Fingerprint, ChunkEntry> = BTreeMap::new();
        let mut first_err: Option<SegmentError> = None;
        for seg in &mut self.segments {
            let mut stream = match seg.stream() {
                Ok(s) => s,
                Err(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            loop {
                match stream.next_record() {
                    Ok(Some((f, Some(e)))) => {
                        merged.insert(f, e);
                    }
                    Ok(Some((f, None))) => {
                        merged.remove(&f);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        first_err.get_or_insert(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = first_err {
            self.poison(&e);
        }
        let mut overlay: Vec<(Fingerprint, CacheSlot)> =
            self.cache.iter().map(|(f, s)| (*f, *s)).collect();
        overlay.sort_unstable_by_key(|(f, _)| *f);
        for (f, slot) in overlay {
            match slot.entry {
                Some(e) => {
                    merged.insert(f, e);
                }
                None => {
                    merged.remove(&f);
                }
            }
        }
        merged.into_iter().collect()
    }

    fn footprint(&self) -> RamFootprint {
        let fence_bytes: usize = self.segments.iter().map(Segment::mem_bytes).sum();
        RamFootprint {
            cache_entries: self.cache.len(),
            cache_capacity: self.lru.capacity(),
            filter_bytes: self.filter.mem_bytes(),
            fence_bytes,
            segments: self.segments.len(),
            approx_bytes: self.cache.len() * ENTRY_COST + self.filter.mem_bytes() + fence_bytes,
        }
    }

    /// Durably persists the store: flushes every dirty cache slot into a
    /// segment, then writes the manifest — serialized filter plus each
    /// segment's (seq, count, records-end, fence index) — with the same
    /// tmp + `sync_all` + rename discipline segments use, under a
    /// whole-body FNV-1a checksum. After this, [`DiskStore::reopen`]
    /// restores the partition without reading a single segment byte.
    fn persist(&mut self) -> Result<(), SegmentError> {
        if let Some(e) = &self.error {
            // Poisoned state must not be made durable.
            return Err(SegmentError::Io(e.clone()));
        }
        self.flush_dirty()?;
        self.init()?;
        let mut body =
            Vec::with_capacity(32 + self.filter.encoded_len() + self.segments.len() * 64);
        body.extend_from_slice(&self.next_seq.to_le_bytes());
        body.extend_from_slice(&self.live.to_le_bytes());
        self.filter.encode(&mut body);
        body.extend_from_slice(&(self.segments.len() as u64).to_le_bytes());
        for seg in &self.segments {
            body.extend_from_slice(&seg.seq().to_le_bytes());
            body.extend_from_slice(&seg.count().to_le_bytes());
            body.extend_from_slice(&seg.records_end().to_le_bytes());
            let fences = seg.fences();
            body.extend_from_slice(&(fences.len() as u64).to_le_bytes());
            for (fp, off) in fences {
                fp.encode(&mut body);
                body.extend_from_slice(&off.to_le_bytes());
            }
        }
        let path = self.dir.join(MANIFEST_NAME);
        let tmp = self.dir.join(format!("{MANIFEST_NAME}{TMP_SUFFIX}"));
        let result = (|| {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| manifest_io(&tmp, "create", &e))?;
            f.write_all(MANIFEST_MAGIC).map_err(|e| manifest_io(&tmp, "write", &e))?;
            f.write_all(&body).map_err(|e| manifest_io(&tmp, "write", &e))?;
            f.write_all(&fnv1a(&body).to_le_bytes())
                .map_err(|e| manifest_io(&tmp, "write", &e))?;
            f.sync_all().map_err(|e| manifest_io(&tmp, "sync", &e))?;
            std::fs::rename(&tmp, &path).map_err(|e| manifest_io(&path, "rename", &e))?;
            Ok(())
        })();
        if result.is_err() {
            if let Err(rm) = std::fs::remove_file(&tmp) {
                debug_assert!(
                    rm.kind() == std::io::ErrorKind::NotFound,
                    "manifest tmp cleanup failed: {rm}"
                );
            }
        }
        result
    }

    /// Reopens a partition directory written by [`DiskStore::persist`].
    /// The happy path loads the manifest, restores the filter from its
    /// serialized state, and opens every referenced segment from its
    /// persisted metadata — **zero segment reads**. Any manifest problem
    /// (missing, bad magic, checksum mismatch, a referenced segment that
    /// fails its size check) falls back to a full sweep that scans each
    /// segment end to end, rebuilding fences and the filter from the
    /// authoritative records.
    fn reopen(budget: usize, dir: PathBuf) -> Self {
        let mut store = DiskStore::new(budget, dir);
        if !store.dir.is_dir() {
            // Nothing persisted: behave exactly like a fresh store.
            return store;
        }
        // In-flight temp files from a crashed write are inert (nothing
        // ever reads them); clear them so they don't accumulate.
        if let Ok(entries) = std::fs::read_dir(&store.dir) {
            let mut stale: Vec<PathBuf> = entries
                .flatten()
                .map(|d| d.path())
                .filter(|p| p.to_str().is_some_and(|s| s.ends_with(TMP_SUFFIX)))
                .collect();
            stale.sort_unstable();
            for p in stale {
                if let Err(rm) = std::fs::remove_file(&p) {
                    debug_assert!(
                        rm.kind() == std::io::ErrorKind::NotFound,
                        "tmp sweep failed: {rm}"
                    );
                }
            }
        }
        if store.load_manifest().is_err() {
            store.segments.clear();
            if let Err(e) = store.rebuild_from_segments() {
                store.poison(&e);
            }
        }
        // Adopted files must not be swept by the lazy fresh-session init.
        store.initialized = true;
        store
    }

    /// Loads the manifest and opens its segments, committing into `self`
    /// only when the whole file parses and every segment opens. Also
    /// sweeps segment files the manifest does not reference: they were
    /// flushed after the last persist, so their records are absent from
    /// the restored filter — keeping them would reintroduce exactly the
    /// false negatives the filter contract forbids.
    fn load_manifest(&mut self) -> Result<(), SegmentError> {
        let path = self.dir.join(MANIFEST_NAME);
        let buf = std::fs::read(&path).map_err(|e| manifest_io(&path, "read", &e))?;
        if buf.len() < MANIFEST_MAGIC.len() + 8 {
            return Err(SegmentError::Truncated);
        }
        if buf.get(..6) != Some(&MANIFEST_MAGIC[..]) {
            return Err(SegmentError::BadMagic);
        }
        let body = buf.get(6..buf.len() - 8).ok_or(SegmentError::Truncated)?;
        let stored = u64::from_le_bytes(
            buf.get(buf.len() - 8..)
                .and_then(|s| s.try_into().ok())
                .ok_or(SegmentError::Truncated)?,
        );
        if fnv1a(body) != stored {
            return Err(SegmentError::BadChecksum);
        }
        let mut r = ByteReader { buf: body, pos: 0 };
        let next_seq = r.u64()?;
        let live = r.u64()?;
        let (filter, used) =
            CuckooFilter::decode(r.rest()).ok_or(SegmentError::Truncated)?;
        r.take(used)?;
        let seg_count = r.u64()?;
        let mut segments: Vec<Segment> = Vec::new();
        let mut referenced: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..seg_count {
            let seq = r.u64()?;
            let count = r.u64()?;
            let records_end = r.u64()?;
            let fence_count = r.u64()?;
            let mut fences: Vec<(Fingerprint, u64)> = Vec::new();
            for _ in 0..fence_count {
                let (fp, fp_used) =
                    Fingerprint::decode(r.rest()).ok_or(SegmentError::BadFingerprint)?;
                r.take(fp_used)?;
                fences.push((fp, r.u64()?));
            }
            segments.push(Segment::open_with_metadata(
                &self.dir,
                seq,
                count,
                records_end,
                fences,
            )?);
            referenced.insert(seq);
        }
        if r.pos != body.len() {
            return Err(SegmentError::Truncated);
        }
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| manifest_io(&self.dir, "read dir", &e))?;
        let mut unreferenced: Vec<PathBuf> = entries
            .flatten()
            .filter(|d| {
                d.file_name()
                    .to_str()
                    .and_then(Segment::seq_from_name)
                    .is_some_and(|seq| !referenced.contains(&seq))
            })
            .map(|d| d.path())
            .collect();
        unreferenced.sort_unstable();
        for p in unreferenced {
            // A sweep failure must abort the manifest path: a segment the
            // filter cannot see would serve false negatives.
            std::fs::remove_file(&p).map_err(|e| manifest_io(&p, "sweep", &e))?;
        }
        self.next_seq = next_seq.max(referenced.last().map_or(0, |s| s + 1));
        self.live = live;
        self.filter = filter;
        self.segments = segments;
        Ok(())
    }

    /// The manifest-less recovery path: adopts every segment file in the
    /// directory by scanning it end to end (checksum-verified), then
    /// rebuilds the filter and live count from the merged record set.
    /// O(live) transient memory — the same bound the snapshot codec's
    /// `dump` already accepts.
    fn rebuild_from_segments(&mut self) -> Result<(), SegmentError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| manifest_io(&self.dir, "read dir", &e))?;
        let mut seqs: Vec<u64> = entries
            .flatten()
            .filter_map(|d| d.file_name().to_str().and_then(Segment::seq_from_name))
            .collect();
        seqs.sort_unstable();
        let mut segments: Vec<Segment> = Vec::new();
        for seq in seqs {
            segments.push(Segment::open_scan(&self.dir, seq)?);
        }
        self.next_seq = segments.last().map_or(1, |s| s.seq() + 1);
        self.segments = segments;
        let mut merged: BTreeSet<Fingerprint> = BTreeSet::new();
        for seg in &mut self.segments {
            let mut s = seg.stream()?;
            while let Some((f, rec)) = s.next_record()? {
                if rec.is_some() {
                    merged.insert(f);
                } else {
                    merged.remove(&f);
                }
            }
        }
        self.live = merged.len() as u64;
        let keys: Vec<Fingerprint> = merged.into_iter().collect();
        self.filter = filter_from_keys(&keys)?;
        Ok(())
    }
}

fn manifest_io(path: &Path, what: &str, e: &std::io::Error) -> SegmentError {
    SegmentError::Io(format!("manifest {what} {}: {e}", path.display()))
}

/// Builds a filter holding exactly `keys`, growing geometrically on
/// overflow. The bound of eight doublings is unreachable for any real
/// key set (it represents a 256× headroom over the initial sizing).
fn filter_from_keys(keys: &[Fingerprint]) -> Result<CuckooFilter, SegmentError> {
    let mut cap = (keys.len() + 2).next_power_of_two().max(1024);
    for _ in 0..8 {
        let mut f = CuckooFilter::with_capacity(cap);
        if keys.iter().all(|k| f.insert(k).is_ok()) {
            return Ok(f);
        }
        cap = cap.saturating_mul(2);
    }
    Err(SegmentError::Io("existence filter rebuild kept overflowing".to_string()))
}

/// Panic-free little-endian cursor over the manifest body.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        let end = self.pos.checked_add(n).ok_or(SegmentError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(SegmentError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().map_err(|_| SegmentError::Truncated)?))
    }

    fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }
}

/// Storage behind a partition: the modelled resident map, or the real
/// disk-backed store.
enum Storage {
    Resident { map: HashMap<Fingerprint, ChunkEntry>, ram: LruSet<Fingerprint> },
    Disk(DiskStore),
}

struct Inner {
    storage: Storage,
    stats: IndexStats,
}

/// One index partition.
pub struct IndexPartition {
    inner: Mutex<Inner>,
    ram_capacity: usize,
}

impl IndexPartition {
    /// Creates a RAM-resident partition whose modelled cache holds
    /// `ram_capacity` entries.
    pub fn new(ram_capacity: usize) -> Self {
        IndexPartition {
            inner: Mutex::new(Inner {
                storage: Storage::Resident {
                    map: HashMap::new(),
                    ram: LruSet::new(ram_capacity),
                },
                stats: IndexStats::default(),
            }),
            ram_capacity,
        }
    }

    /// Creates a disk-backed partition: at most `ram_capacity` entries
    /// cached in RAM, overflow in sorted segments under `dir`, negative
    /// lookups short-circuited by a cuckoo existence filter.
    ///
    /// Construction is infallible; the directory is created (and stale
    /// files from a previous process swept) lazily on the first flush.
    /// IO failures poison the partition — see [`IndexPartition::io_error`].
    pub fn disk_backed(ram_capacity: usize, dir: PathBuf) -> Self {
        IndexPartition {
            inner: Mutex::new(Inner {
                storage: Storage::Disk(DiskStore::new(ram_capacity, dir)),
                stats: IndexStats::default(),
            }),
            ram_capacity,
        }
    }

    /// Reopens a disk-backed partition from state previously made durable
    /// by [`IndexPartition::persist`]. The persisted manifest restores the
    /// existence filter and every segment's fence index without reading a
    /// single segment byte; a missing or corrupt manifest falls back to a
    /// full sweep that scans each (checksum-verified) segment to rebuild
    /// both. Unlike [`IndexPartition::disk_backed`], existing files under
    /// `dir` are adopted, not swept.
    pub fn disk_backed_reopen(ram_capacity: usize, dir: PathBuf) -> Self {
        IndexPartition {
            inner: Mutex::new(Inner {
                storage: Storage::Disk(DiskStore::reopen(ram_capacity, dir)),
                stats: IndexStats::default(),
            }),
            ram_capacity,
        }
    }

    /// Durably persists a disk-backed partition: flushes dirty cache
    /// slots to a segment, then writes a checksummed manifest (filter
    /// state + segment metadata) with the atomic-write discipline, so
    /// [`IndexPartition::disk_backed_reopen`] can restore the partition
    /// with zero segment reads. No-op for resident partitions (they have
    /// no durable form; the snapshot codec covers them). Fails without
    /// writing if the partition is poisoned — degraded state must not be
    /// made durable.
    pub fn persist(&self) -> Result<(), SegmentError> {
        let mut g = self.inner.lock();
        match &mut g.storage {
            Storage::Resident { .. } => Ok(()),
            Storage::Disk(d) => d.persist(),
        }
    }

    /// The RAM cache capacity (entries).
    pub fn ram_capacity(&self) -> usize {
        self.ram_capacity
    }

    /// True when this partition stores overflow in on-disk segments.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.inner.lock().storage, Storage::Disk(_))
    }

    /// The first IO error this partition hit, if any. Once set, the
    /// partition keeps serving degraded (probe failures read as absent,
    /// dirty state stays cached) and the error sticks until the partition
    /// is rebuilt; the engine must not commit state derived from it.
    pub fn io_error(&self) -> Option<String> {
        match &self.inner.lock().storage {
            Storage::Resident { .. } => None,
            Storage::Disk(d) => d.error.clone(),
        }
    }

    /// Full lookup with storage classification. On a hit the entry's
    /// reference count is incremented and the fingerprint becomes
    /// most-recently-used.
    pub fn lookup_classified(&self, fp: &Fingerprint) -> LookupOutcome {
        self.lookup_traced(fp).0
    }

    /// [`IndexPartition::lookup_classified`] plus the per-lookup
    /// filter/probe observations the observability counters consume.
    pub fn lookup_traced(&self, fp: &Fingerprint) -> (LookupOutcome, ProbeTrace) {
        let mut g = self.inner.lock();
        let Inner { storage, stats } = &mut *g;
        stats.lookups += 1;
        let mut trace = ProbeTrace::default();
        match storage {
            Storage::Resident { map, ram } => {
                // Whether the index currently fits entirely in the cache:
                // if so, even negative lookups are RAM-resident.
                let fits_in_ram = map.len() <= ram.capacity();
                let in_ram = ram.touch(fp);
                match map.get_mut(fp) {
                    Some(entry) => {
                        entry.refcount = entry.refcount.saturating_add(1);
                        let entry = *entry;
                        stats.hits += 1;
                        if in_ram || fits_in_ram {
                            stats.ram_hits += 1;
                            ram.insert(*fp);
                            (LookupOutcome::HitRam(entry), trace)
                        } else {
                            stats.disk_reads += 1;
                            trace.disk_probes = 1;
                            ram.insert(*fp);
                            (LookupOutcome::HitDisk(entry), trace)
                        }
                    }
                    None => {
                        if fits_in_ram {
                            (LookupOutcome::MissRam, trace)
                        } else {
                            // A negative lookup against an over-RAM index
                            // must probe disk (no existence filter in the
                            // modelled design).
                            stats.disk_reads += 1;
                            trace.disk_probes = 1;
                            (LookupOutcome::MissDisk, trace)
                        }
                    }
                }
            }
            Storage::Disk(d) => {
                if let Some(slot) = d.cache.get_mut(fp) {
                    if let Some(e) = slot.entry.as_mut() {
                        e.refcount = e.refcount.saturating_add(1);
                        let out = *e;
                        slot.dirty = true;
                        d.lru.touch(fp);
                        stats.hits += 1;
                        stats.ram_hits += 1;
                        return (LookupOutcome::HitRam(out), trace);
                    }
                    // Cached tombstone: definitely absent, zero IO.
                    return (LookupOutcome::MissRam, trace);
                }
                if !d.filter.contains(fp) {
                    stats.filter_hits += 1;
                    trace.filter_short_circuit = true;
                    return (LookupOutcome::MissRam, trace);
                }
                let (found, probes) = d.probe(fp);
                trace.disk_probes = probes;
                if probes > 0 {
                    stats.disk_reads += 1;
                }
                match found {
                    Some(Some(mut e)) => {
                        e.refcount = e.refcount.saturating_add(1);
                        d.admit(*fp, CacheSlot { entry: Some(e), dirty: true, on_disk: true });
                        stats.hits += 1;
                        (LookupOutcome::HitDisk(e), trace)
                    }
                    // Disk tombstone, nothing found, or probe degraded by
                    // an IO error: the filter passed but disk disagreed.
                    _ => {
                        stats.filter_false_positives += 1;
                        trace.filter_false_positive = true;
                        (LookupOutcome::MissDisk, trace)
                    }
                }
            }
        }
    }

    /// Lookup discarding the RAM/disk classification.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.lookup_classified(fp).entry()
    }

    /// Side-effect-free existence/entry peek: no reference-count bump, no
    /// statistics, no cache-recency change. The trait-level fallback scan
    /// on `AppAwareIndex` uses this to find the owning partition without
    /// polluting the others.
    pub fn peek(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        let mut g = self.inner.lock();
        match &mut g.storage {
            Storage::Resident { map, .. } => map.get(fp).copied(),
            Storage::Disk(d) => {
                if let Some(slot) = d.cache.get(fp) {
                    return slot.entry;
                }
                if !d.filter.contains(fp) {
                    return None;
                }
                d.probe(fp).0.flatten()
            }
        }
    }

    /// Inserts a new entry; returns `false` if the fingerprint was already
    /// present (the original is kept).
    pub fn insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool {
        let mut g = self.inner.lock();
        let Inner { storage, stats } = &mut *g;
        match storage {
            Storage::Resident { map, ram } => {
                use std::collections::hash_map::Entry;
                match map.entry(fp) {
                    Entry::Occupied(_) => false,
                    Entry::Vacant(v) => {
                        v.insert(entry);
                        stats.inserts += 1;
                        ram.insert(fp);
                        true
                    }
                }
            }
            Storage::Disk(d) => {
                if let Some(slot) = d.cache.get_mut(&fp) {
                    if slot.entry.is_some() {
                        return false;
                    }
                    // Resurrect over a cached tombstone.
                    slot.entry = Some(entry);
                    slot.dirty = true;
                    d.lru.touch(&fp);
                    d.filter_insert(&fp);
                    d.live += 1;
                    stats.inserts += 1;
                    return true;
                }
                if d.filter.contains(&fp) {
                    if let (Some(Some(existing)), _) = d.probe(&fp) {
                        // Already present on disk; admit for locality.
                        d.admit(
                            fp,
                            CacheSlot { entry: Some(existing), dirty: false, on_disk: true },
                        );
                        return false;
                    }
                }
                d.admit(fp, CacheSlot { entry: Some(entry), dirty: true, on_disk: false });
                d.filter_insert(&fp);
                d.live += 1;
                stats.inserts += 1;
                true
            }
        }
    }

    /// State-restore primitive: if the fingerprint exists, bumps its
    /// reference count; otherwise inserts `entry` as given. Newly created
    /// entries are counted as `recovered_entries`, not `inserts`, so
    /// post-recovery statistics stay comparable with a never-crashed
    /// run's query-path counts. Returns true if the entry was newly
    /// inserted.
    pub fn bump_or_insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool {
        let mut g = self.inner.lock();
        let Inner { storage, stats } = &mut *g;
        match storage {
            Storage::Resident { map, ram } => {
                use std::collections::hash_map::Entry;
                match map.entry(fp) {
                    Entry::Occupied(mut o) => {
                        o.get_mut().refcount = o.get().refcount.saturating_add(1);
                        false
                    }
                    Entry::Vacant(v) => {
                        v.insert(entry);
                        ram.insert(fp);
                        stats.recovered_entries += 1;
                        true
                    }
                }
            }
            Storage::Disk(d) => {
                if let Some(slot) = d.cache.get_mut(&fp) {
                    if let Some(e) = slot.entry.as_mut() {
                        e.refcount = e.refcount.saturating_add(1);
                        slot.dirty = true;
                        d.lru.touch(&fp);
                        return false;
                    }
                    slot.entry = Some(entry);
                    slot.dirty = true;
                    d.lru.touch(&fp);
                    d.filter_insert(&fp);
                    d.live += 1;
                    stats.recovered_entries += 1;
                    return true;
                }
                if d.filter.contains(&fp) {
                    if let (Some(Some(mut existing)), _) = d.probe(&fp) {
                        existing.refcount = existing.refcount.saturating_add(1);
                        d.admit(
                            fp,
                            CacheSlot { entry: Some(existing), dirty: true, on_disk: true },
                        );
                        return false;
                    }
                }
                d.admit(fp, CacheSlot { entry: Some(entry), dirty: true, on_disk: false });
                d.filter_insert(&fp);
                d.live += 1;
                stats.recovered_entries += 1;
                true
            }
        }
    }

    /// Repoints an entry at a new `(container, offset)` placement while
    /// preserving its length and reference count — the vacuum relocation
    /// primitive. The relocated entry becomes cache-resident and
    /// most-recently-used: a hot entry must not be charged a disk read on
    /// its next lookup just because vacuum moved it. Returns false (and
    /// changes nothing) if the fingerprint is absent.
    pub fn update_placement(&self, fp: &Fingerprint, container: u64, offset: u32) -> bool {
        let mut g = self.inner.lock();
        match &mut g.storage {
            Storage::Resident { map, ram } => match map.get_mut(fp) {
                Some(entry) => {
                    entry.container = container;
                    entry.offset = offset;
                    ram.insert(*fp);
                    true
                }
                None => false,
            },
            Storage::Disk(d) => {
                if let Some(slot) = d.cache.get_mut(fp) {
                    if let Some(e) = slot.entry.as_mut() {
                        e.container = container;
                        e.offset = offset;
                        slot.dirty = true;
                        d.lru.touch(fp);
                        return true;
                    }
                    return false;
                }
                if !d.filter.contains(fp) {
                    return false;
                }
                match d.probe(fp) {
                    (Some(Some(mut e)), _) => {
                        e.container = container;
                        e.offset = offset;
                        d.admit(*fp, CacheSlot { entry: Some(e), dirty: true, on_disk: true });
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Replaces the partition's contents with exactly `entries` — the
    /// recovery reconciliation primitive. Entries absent from `entries`
    /// are pruned (a stale snapshot resurrected them), present ones take
    /// the given refcount/placement verbatim; newly materialised entries
    /// count as `recovered_entries`. Returns `(pruned, added)` counts
    /// relative to the previous contents.
    pub fn reconcile(
        &self,
        entries: impl IntoIterator<Item = (Fingerprint, ChunkEntry)>,
    ) -> (usize, usize) {
        let mut g = self.inner.lock();
        let Inner { storage, stats } = &mut *g;
        match storage {
            Storage::Resident { map, ram } => {
                let before = map.len();
                let mut kept = 0usize;
                let mut added = 0usize;
                let mut next: HashMap<Fingerprint, ChunkEntry> = HashMap::new();
                for (fp, e) in entries {
                    if map.contains_key(&fp) {
                        kept += 1;
                    } else {
                        added += 1;
                    }
                    next.insert(fp, e);
                    ram.insert(fp);
                }
                let mut stale: Vec<Fingerprint> = map.keys().copied().collect();
                stale.sort_unstable();
                for fp in stale {
                    if !next.contains_key(&fp) {
                        ram.remove(&fp);
                    }
                }
                let pruned = before - kept;
                *map = next;
                stats.recovered_entries += added as u64;
                (pruned, added)
            }
            Storage::Disk(d) => {
                let mut sorted: Vec<(Fingerprint, ChunkEntry)> = entries.into_iter().collect();
                sorted.sort_by_key(|(f, _)| *f);
                // Last write wins on duplicate keys, matching the
                // resident arm's HashMap semantics.
                sorted.reverse();
                sorted.dedup_by_key(|(f, _)| *f);
                sorted.reverse();
                let before = d.live as usize;
                let mut kept = 0usize;
                for (f, _) in &sorted {
                    if d.exists(f) {
                        kept += 1;
                    }
                }
                let added = sorted.len() - kept;
                if let Err(e) = d.replace_all(&sorted) {
                    d.poison(&e);
                }
                stats.recovered_entries += added as u64;
                (before - kept, added)
            }
        }
    }

    /// Decrements the reference count; removes and returns the entry when
    /// it reaches zero.
    pub fn release(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        let mut g = self.inner.lock();
        match &mut g.storage {
            Storage::Resident { map, ram } => {
                let entry = map.get_mut(fp)?;
                entry.refcount = entry.refcount.saturating_sub(1);
                if entry.refcount == 0 {
                    let removed = map.remove(fp);
                    ram.remove(fp);
                    removed
                } else {
                    None
                }
            }
            Storage::Disk(d) => {
                if let Some(slot) = d.cache.get_mut(fp) {
                    let e = slot.entry.as_mut()?;
                    e.refcount = e.refcount.saturating_sub(1);
                    let after = *e;
                    slot.dirty = true;
                    if after.refcount == 0 {
                        if slot.on_disk {
                            // Tombstone shadows the stale disk record.
                            slot.entry = None;
                        } else {
                            d.cache.remove(fp);
                            d.lru.remove(fp);
                        }
                        d.filter.delete(fp);
                        d.live = d.live.saturating_sub(1);
                        return Some(after);
                    }
                    d.lru.touch(fp);
                    return None;
                }
                if !d.filter.contains(fp) {
                    return None;
                }
                match d.probe(fp) {
                    (Some(Some(mut e)), _) => {
                        e.refcount = e.refcount.saturating_sub(1);
                        if e.refcount == 0 {
                            d.admit(*fp, CacheSlot { entry: None, dirty: true, on_disk: true });
                            d.filter.delete(fp);
                            d.live = d.live.saturating_sub(1);
                            Some(e)
                        } else {
                            d.admit(
                                *fp,
                                CacheSlot { entry: Some(e), dirty: true, on_disk: true },
                            );
                            None
                        }
                    }
                    _ => None,
                }
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match &self.inner.lock().storage {
            Storage::Resident { map, .. } => map.len(),
            Storage::Disk(d) => d.live as usize,
        }
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IndexStats {
        self.inner.lock().stats
    }

    /// Measured RAM footprint (cache slots, filter table, segment
    /// fences). For a resident partition this is the whole map.
    pub fn ram_footprint(&self) -> RamFootprint {
        let g = self.inner.lock();
        match &g.storage {
            Storage::Resident { map, .. } => RamFootprint {
                cache_entries: map.len(),
                cache_capacity: self.ram_capacity,
                filter_bytes: 0,
                fence_bytes: 0,
                segments: 0,
                approx_bytes: map.len() * ENTRY_COST,
            },
            Storage::Disk(d) => d.footprint(),
        }
    }

    /// Iterates over all `(fingerprint, entry)` pairs into a vector
    /// (used by the snapshot codec). Sorted by fingerprint so snapshot
    /// bytes do not depend on storage layout.
    pub fn dump(&self) -> Vec<(Fingerprint, ChunkEntry)> {
        let mut g = self.inner.lock();
        match &mut g.storage {
            Storage::Resident { map, .. } => {
                let mut entries: Vec<(Fingerprint, ChunkEntry)> =
                    map.iter().map(|(k, v)| (*k, *v)).collect();
                entries.sort_unstable_by_key(|(fp, _)| *fp);
                entries
            }
            Storage::Disk(d) => d.dump(),
        }
    }

    /// Bulk-loads entries (used by the snapshot codec). Existing entries
    /// with the same fingerprint are overwritten.
    pub fn load(&self, entries: impl IntoIterator<Item = (Fingerprint, ChunkEntry)>) {
        let mut g = self.inner.lock();
        match &mut g.storage {
            Storage::Resident { map, ram } => {
                for (fp, e) in entries {
                    map.insert(fp, e);
                    ram.insert(fp);
                }
            }
            Storage::Disk(d) => {
                let mut sorted: Vec<(Fingerprint, ChunkEntry)> = entries.into_iter().collect();
                if sorted.is_empty() {
                    return;
                }
                sorted.sort_by_key(|(f, _)| *f);
                sorted.reverse();
                sorted.dedup_by_key(|(f, _)| *f);
                sorted.reverse();
                // New keys join the live count and the filter; existing
                // keys are overwritten by segment shadowing.
                let mut fresh: Vec<Fingerprint> = Vec::new();
                for (f, _) in &sorted {
                    if !d.exists(f) {
                        fresh.push(*f);
                    }
                }
                // Stale cache slots for loaded keys must not shadow the
                // new records.
                for (f, _) in &sorted {
                    if d.cache.remove(f).is_some() {
                        d.lru.remove(f);
                    }
                }
                let write = (|| -> Result<(), SegmentError> {
                    d.init()?;
                    let seq = d.next_seq;
                    let seg =
                        Segment::write(&d.dir, seq, sorted.iter().map(|(f, e)| (*f, Some(*e))))?;
                    d.next_seq += 1;
                    d.segments.push(seg);
                    Ok(())
                })();
                if let Err(e) = write {
                    d.poison(&e);
                    return;
                }
                for f in &fresh {
                    d.live += 1;
                    // Keys loaded straight to disk are not cache-resident;
                    // insert into the filter directly (rebuild on overflow
                    // scans segments, which now include them).
                    if d.filter.insert(f).is_err() {
                        if let Err(e) = d.rebuild_filter() {
                            d.poison(&e);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, &n.to_le_bytes())
    }

    fn disk_partition(ram: usize, tag: &str) -> (IndexPartition, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-part-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (IndexPartition::disk_backed(ram, dir.clone()), dir)
    }

    #[test]
    fn insert_then_lookup() {
        let p = IndexPartition::new(100);
        assert!(p.insert(fp(1), ChunkEntry::new(10, 0, 0)));
        assert!(!p.insert(fp(1), ChunkEntry::new(20, 1, 1)), "duplicate insert rejected");
        let got = p.lookup(&fp(1)).unwrap();
        assert_eq!(got.len, 10, "original entry preserved");
        assert!(p.lookup(&fp(2)).is_none());
    }

    #[test]
    fn hits_bump_refcount_and_release_decrements() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(10, 0, 0));
        p.lookup(&fp(1)); // refcount 2
        assert!(p.release(&fp(1)).is_none(), "still referenced");
        let removed = p.release(&fp(1)).expect("last release removes");
        assert_eq!(removed.len, 10);
        assert!(p.lookup(&fp(1)).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn small_index_never_touches_disk() {
        let p = IndexPartition::new(1000);
        for i in 0..500 {
            p.insert(fp(i), ChunkEntry::new(1, 0, i as u32));
        }
        for i in 0..500 {
            assert!(!p.lookup_classified(&fp(i)).touched_disk(), "i={i}");
        }
        for i in 1000..1100 {
            assert_eq!(p.lookup_classified(&fp(i)), LookupOutcome::MissRam);
        }
        assert_eq!(p.stats().disk_reads, 0);
    }

    #[test]
    fn oversized_index_pays_disk_reads() {
        let p = IndexPartition::new(10);
        for i in 0..1000 {
            p.insert(fp(i), ChunkEntry::new(1, 0, i as u32));
        }
        // Cold lookups over a large key space: almost everything misses the
        // tiny cache.
        let mut disk = 0;
        for i in 0..1000 {
            if p.lookup_classified(&fp(i)).touched_disk() {
                disk += 1;
            }
        }
        assert!(disk >= 900, "expected most lookups on disk, got {disk}");
        // Immediately repeated lookups are RAM hits (cache locality).
        assert!(!p.lookup_classified(&fp(999)).touched_disk());
    }

    #[test]
    fn negative_lookup_on_big_index_probes_disk() {
        let p = IndexPartition::new(10);
        for i in 0..100 {
            p.insert(fp(i), ChunkEntry::new(1, 0, 0));
        }
        assert_eq!(p.lookup_classified(&fp(777)), LookupOutcome::MissDisk);
    }

    #[test]
    fn stats_accounting() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(1, 0, 0));
        p.lookup(&fp(1));
        p.lookup(&fp(2));
        let s = p.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn dump_and_load_round_trip() {
        let p = IndexPartition::new(100);
        for i in 0..50 {
            p.insert(fp(i), ChunkEntry::new(i, i, i as u32));
        }
        let mut dumped = p.dump();
        dumped.sort_by_key(|(f, _)| f.prefix64());
        let q = IndexPartition::new(100);
        q.load(dumped.clone());
        assert_eq!(q.len(), 50);
        for (f, e) in dumped {
            assert_eq!(q.lookup(&f).map(|x| (x.len, x.container)), Some((e.len, e.container)));
        }
    }

    #[test]
    fn update_placement_preserves_len_and_refcount() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(10, 7, 3));
        p.lookup(&fp(1)); // refcount 2
        assert!(p.update_placement(&fp(1), 42, 99));
        let e = p.lookup(&fp(1)).unwrap(); // refcount 3
        assert_eq!((e.len, e.container, e.offset), (10, 42, 99));
        assert!(p.release(&fp(1)).is_none());
        assert!(p.release(&fp(1)).is_none());
        assert!(p.release(&fp(1)).is_some(), "refcount survived the move");
        assert!(!p.update_placement(&fp(1), 0, 0), "absent fp is a no-op");
    }

    #[test]
    fn update_placement_keeps_entry_hot() {
        // Regression (vacuum-then-lookup): relocating an entry must leave
        // it cache-resident — a hot entry must not be charged a disk read
        // on its next lookup just because vacuum moved it.
        let p = IndexPartition::new(10);
        for i in 0..100 {
            p.insert(fp(i), ChunkEntry::new(1, 0, i as u32));
        }
        // Make fp(5) hot, then age it fully out of the cache.
        p.lookup(&fp(5));
        for i in 50..90 {
            p.lookup(&fp(i));
        }
        // Vacuum relocates it: placement update must re-admit it.
        assert!(p.update_placement(&fp(5), 77, 3));
        let (outcome, _) = p.lookup_traced(&fp(5));
        assert!(
            matches!(outcome, LookupOutcome::HitRam(_)),
            "relocated entry should be RAM-resident, got {outcome:?}"
        );
        let e = outcome.entry().unwrap();
        assert_eq!((e.container, e.offset), (77, 3));
    }

    #[test]
    fn bump_or_insert_counts_recovered_entries() {
        // Regression: recovery-path inserts must be visible in stats
        // (but as recovered_entries, keeping `inserts` query-path-only).
        let p = IndexPartition::new(100);
        assert!(p.bump_or_insert(fp(1), ChunkEntry::new(10, 0, 0)));
        assert!(!p.bump_or_insert(fp(1), ChunkEntry::new(10, 0, 0)), "bump, not insert");
        let s = p.stats();
        assert_eq!(s.inserts, 0, "query-path inserts untouched");
        assert_eq!(s.recovered_entries, 1);
    }

    #[test]
    fn reconcile_prunes_fixes_and_adds() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(10, 0, 0)); // stays, refcount corrected
        p.insert(fp(2), ChunkEntry::new(20, 0, 16)); // pruned (stale)
        let mut truth = ChunkEntry::new(10, 5, 0);
        truth.refcount = 3;
        let (pruned, added) =
            p.reconcile([(fp(1), truth), (fp(3), ChunkEntry::new(30, 6, 0))]);
        assert_eq!((pruned, added), (1, 1));
        assert_eq!(p.len(), 2);
        assert!(p.lookup(&fp(2)).is_none());
        let e = p.lookup(&fp(1)).unwrap(); // refcount now 4
        assert_eq!(e.container, 5);
        for _ in 0..3 {
            assert!(p.release(&fp(1)).is_none(), "reconciled refcount respected");
        }
        assert!(p.release(&fp(1)).is_some());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let p = Arc::new(IndexPartition::new(10_000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let k = t * 1000 + i;
                    p.insert(fp(k), ChunkEntry::new(k, 0, 0));
                    assert!(p.lookup(&fp(k)).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.len(), 4000);
    }

    // ---- disk-backed mode ----

    #[test]
    fn disk_backed_basic_round_trip() {
        let (p, dir) = disk_partition(8, "basic");
        for i in 0..100 {
            assert!(p.insert(fp(i), ChunkEntry::new(i, i, i as u32)), "i={i}");
        }
        assert_eq!(p.len(), 100);
        for i in 0..100 {
            let e = p.lookup(&fp(i)).unwrap_or_else(|| panic!("missing {i}"));
            assert_eq!((e.len, e.container), (i, i));
        }
        assert!(p.io_error().is_none(), "{:?}", p.io_error());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_negative_lookups_skip_disk() {
        let (p, dir) = disk_partition(8, "neg");
        for i in 0..200 {
            p.insert(fp(i), ChunkEntry::new(1, 0, 0));
        }
        let before = p.stats();
        for i in 10_000..10_500 {
            let (outcome, trace) = p.lookup_traced(&fp(i));
            assert_eq!(outcome, LookupOutcome::MissRam, "i={i}");
            assert_eq!(trace.disk_probes, 0, "i={i}");
        }
        let s = p.stats();
        assert_eq!(s.disk_reads, before.disk_reads, "no disk probes for fresh keys");
        assert_eq!(s.filter_hits - before.filter_hits, 500);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_footprint_stays_bounded() {
        let budget = 16;
        let (p, dir) = disk_partition(budget, "bound");
        for i in 0..2000 {
            p.insert(fp(i), ChunkEntry::new(1, 0, 0));
        }
        assert!(p.io_error().is_none(), "{:?}", p.io_error());
        let f = p.ram_footprint();
        assert!(
            f.cache_entries <= budget,
            "cache {} exceeds budget {budget}",
            f.cache_entries
        );
        assert!(f.segments <= MAX_SEGMENTS + 1, "segments {} unbounded", f.segments);
        // Entries (2000) vastly exceed RAM-resident slots.
        assert_eq!(p.len(), 2000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_matches_resident_over_mixed_ops() {
        // Differential: the same op sequence against resident and
        // disk-backed partitions yields identical results and final
        // contents.
        let resident = IndexPartition::new(1 << 20);
        let (disk, dir) = disk_partition(8, "diff");
        let mut x = 99u64;
        for step in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 33) % 300;
            match step % 5 {
                0 | 1 => {
                    let e = ChunkEntry::new(k + 1, step, k as u32);
                    assert_eq!(resident.insert(fp(k), e), disk.insert(fp(k), e), "step {step}");
                }
                2 => {
                    assert_eq!(
                        resident.lookup(&fp(k)).map(|e| (e.len, e.container, e.refcount)),
                        disk.lookup(&fp(k)).map(|e| (e.len, e.container, e.refcount)),
                        "step {step}"
                    );
                }
                3 => {
                    assert_eq!(
                        resident.release(&fp(k)).map(|e| e.len),
                        disk.release(&fp(k)).map(|e| e.len),
                        "step {step}"
                    );
                }
                _ => {
                    assert_eq!(
                        resident.update_placement(&fp(k), step, 7),
                        disk.update_placement(&fp(k), step, 7),
                        "step {step}"
                    );
                }
            }
        }
        assert!(disk.io_error().is_none(), "{:?}", disk.io_error());
        assert_eq!(resident.len(), disk.len());
        assert_eq!(resident.dump(), disk.dump(), "final contents identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_release_and_resurrect() {
        let (p, dir) = disk_partition(4, "rr");
        for i in 0..50 {
            p.insert(fp(i), ChunkEntry::new(i + 1, 0, 0));
        }
        // Entry 3 spilled to disk by now; release it to zero.
        let removed = p.release(&fp(3)).expect("refcount 1 → removed");
        assert_eq!(removed.len, 4);
        assert!(p.lookup(&fp(3)).is_none(), "tombstone shadows disk record");
        assert_eq!(p.len(), 49);
        // Re-insert under the same fingerprint.
        assert!(p.insert(fp(3), ChunkEntry::new(99, 9, 9)));
        assert_eq!(p.lookup(&fp(3)).unwrap().len, 99);
        assert_eq!(p.len(), 50);
        assert!(p.io_error().is_none(), "{:?}", p.io_error());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_dump_load_reconcile() {
        let (p, dir) = disk_partition(8, "dlr");
        for i in 0..300 {
            p.insert(fp(i), ChunkEntry::new(i, i, 0));
        }
        let dumped = p.dump();
        assert_eq!(dumped.len(), 300);
        let (q, dir2) = disk_partition(8, "dlr2");
        q.load(dumped.clone());
        assert_eq!(q.len(), 300);
        assert_eq!(q.dump(), dumped);
        // Reconcile down to a subset with fixed refcounts.
        let truth: Vec<(Fingerprint, ChunkEntry)> = (0..100u64)
            .map(|i| {
                let mut e = ChunkEntry::new(i, i, 0);
                e.refcount = 2;
                (fp(i), e)
            })
            .collect();
        let (pruned, added) = q.reconcile(truth);
        assert_eq!((pruned, added), (200, 0));
        assert_eq!(q.len(), 100);
        assert!(q.lookup(&fp(250)).is_none());
        assert_eq!(q.lookup(&fp(50)).unwrap().refcount, 3);
        assert!(q.io_error().is_none(), "{:?}", q.io_error());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn disk_backed_update_placement_admits_to_cache() {
        let (p, dir) = disk_partition(4, "vac");
        for i in 0..64 {
            p.insert(fp(i), ChunkEntry::new(1, 0, i as u32));
        }
        // fp(0) is long evicted; relocate it, then expect a RAM hit.
        assert!(p.update_placement(&fp(0), 55, 4));
        let (outcome, trace) = p.lookup_traced(&fp(0));
        assert!(matches!(outcome, LookupOutcome::HitRam(_)), "got {outcome:?}");
        assert_eq!(trace.disk_probes, 0);
        let e = outcome.entry().unwrap();
        assert_eq!((e.container, e.offset), (55, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_filter_rebuild_survives_growth() {
        // Push far past the initial 1024-capacity filter; the transparent
        // rebuild must keep every live key findable.
        let (p, dir) = disk_partition(16, "grow");
        for i in 0..3000 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        assert!(p.io_error().is_none(), "{:?}", p.io_error());
        for i in (0..3000).step_by(37) {
            assert!(p.lookup(&fp(i)).is_some(), "i={i}");
        }
        assert_eq!(p.len(), 3000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_persist_reopen_round_trip() {
        let (p, dir) = disk_partition(8, "persist");
        for i in 0..400 {
            p.insert(fp(i), ChunkEntry::new(i, i, i as u32));
        }
        // Some deletions so tombstones and filter deletes are exercised.
        for i in (0..100).step_by(3) {
            p.release(&fp(i));
        }
        let before = p.dump();
        let live = p.len();
        p.persist().expect("persist");
        drop(p);
        let q = IndexPartition::disk_backed_reopen(8, dir.clone());
        assert!(q.io_error().is_none(), "{:?}", q.io_error());
        assert_eq!(q.len(), live);
        assert_eq!(q.dump(), before, "contents survive the reopen");
        // Released keys stay gone; survivors still resolve.
        assert!(q.lookup(&fp(0)).is_none());
        assert_eq!(q.lookup(&fp(1)).map(|e| e.container), Some(1));
        // The restored store keeps working as a normal partition.
        assert!(q.insert(fp(9000), ChunkEntry::new(1, 2, 3)));
        assert_eq!(q.len(), live + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_loads_filter_and_fences_without_segment_reads() {
        let (p, dir) = disk_partition(8, "zeroread");
        for i in 0..500 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        let live = p.len();
        p.persist().expect("persist");
        // Footprint after persist: the flush inside persist may have
        // added the final segment the manifest then records.
        let foot_before = p.ram_footprint();
        drop(p);
        // Replace every segment's content with same-length garbage: any
        // read of segment bytes during reopen would now fail, so a clean
        // reopen *proves* the filter and fences came from the manifest.
        let mut clobbered = 0;
        for e in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = e.file_name();
            if name.to_str().and_then(Segment::seq_from_name).is_some() {
                let len = e.metadata().unwrap().len() as usize;
                std::fs::write(e.path(), vec![0xAAu8; len]).unwrap();
                clobbered += 1;
            }
        }
        assert!(clobbered > 0, "expected persisted segments");
        let q = IndexPartition::disk_backed_reopen(8, dir.clone());
        assert!(q.io_error().is_none(), "reopen read segment bytes: {:?}", q.io_error());
        assert_eq!(q.len(), live);
        let foot = q.ram_footprint();
        assert_eq!(foot.segments, foot_before.segments);
        assert_eq!(foot.fence_bytes, foot_before.fence_bytes, "fences from manifest");
        assert_eq!(foot.filter_bytes, foot_before.filter_bytes, "filter from manifest");
        // The restored filter answers negatives from RAM with zero probes.
        for i in 50_000..50_500u64 {
            let (outcome, trace) = q.lookup_traced(&fp(i));
            assert_eq!(outcome, LookupOutcome::MissRam, "i={i}");
            assert_eq!(trace.disk_probes, 0, "i={i}");
        }
        assert_eq!(q.stats().disk_reads, 0, "no disk probe at any point");
        assert!(q.io_error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_full_sweep() {
        let (p, dir) = disk_partition(8, "badmft");
        for i in 0..300 {
            p.insert(fp(i), ChunkEntry::new(i, i, 0));
        }
        for i in (0..50).step_by(2) {
            p.release(&fp(i));
        }
        let before = p.dump();
        let live = p.len();
        p.persist().expect("persist");
        drop(p);
        // Flip one body byte: the manifest checksum must reject it and
        // the reopen must recover everything from the segments alone.
        let mpath = dir.join(super::MANIFEST_NAME);
        let mut bytes = std::fs::read(&mpath).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&mpath, &bytes).unwrap();
        let q = IndexPartition::disk_backed_reopen(8, dir.clone());
        assert!(q.io_error().is_none(), "{:?}", q.io_error());
        assert_eq!(q.len(), live);
        assert_eq!(q.dump(), before, "full sweep recovers exact contents");
        // The rebuilt filter is sound: negatives short-circuit, positives
        // resolve.
        let (outcome, trace) = q.lookup_traced(&fp(90_000));
        assert_eq!(outcome, LookupOutcome::MissRam);
        assert_eq!(trace.disk_probes, 0);
        assert!(q.lookup(&fp(51)).is_some());
        // A missing manifest takes the same path.
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_reopen_recovers_from_segments() {
        let (p, dir) = disk_partition(8, "nomft");
        for i in 0..200 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        let before = p.dump();
        p.persist().expect("persist");
        drop(p);
        std::fs::remove_file(dir.join(super::MANIFEST_NAME)).unwrap();
        let q = IndexPartition::disk_backed_reopen(8, dir.clone());
        assert!(q.io_error().is_none(), "{:?}", q.io_error());
        assert_eq!(q.dump(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_sweeps_segments_newer_than_the_manifest() {
        let (p, dir) = disk_partition(4, "sweepnew");
        for i in 0..100 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        let persisted = p.dump();
        let persisted_len = p.len();
        p.persist().expect("persist");
        drop(p);
        // A segment flushed after the last persist: its records are
        // invisible to the persisted filter, so keeping it would create
        // filter false negatives.
        let stray = fp(777_777);
        Segment::write(&dir, 999, [(stray, Some(ChunkEntry::new(1, 0, 0)))]).unwrap();
        let q = IndexPartition::disk_backed_reopen(4, dir.clone());
        assert!(q.io_error().is_none(), "{:?}", q.io_error());
        // Only the persisted checkpoint survives — the unreferenced
        // segment was swept, and its file is gone.
        assert_eq!(q.len(), persisted_len);
        assert_eq!(q.dump(), persisted);
        assert!(q.lookup(&stray).is_none());
        assert!(!Segment::path_for(&dir, 999).exists(), "stray segment swept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_after_post_persist_compaction_recovers_from_segments() {
        // Mutations after a persist can compact the very segments the
        // manifest references away; the reopen must then fall back to
        // the sweep and recover everything the segments actually hold.
        let (p, dir) = disk_partition(4, "postcompact");
        for i in 0..100 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        p.persist().expect("persist");
        for i in 1000..1100 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        // Flush the stragglers so the disk state is complete, then drop
        // without persisting — the manifest is now stale.
        p.persist().expect("second persist");
        let full = p.dump();
        drop(p);
        std::fs::remove_file(dir.join(super::MANIFEST_NAME)).unwrap();
        let q = IndexPartition::disk_backed_reopen(4, dir.clone());
        assert!(q.io_error().is_none(), "{:?}", q.io_error());
        assert_eq!(q.dump(), full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_of_nonexistent_dir_is_a_fresh_store() {
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-part-fresh-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let q = IndexPartition::disk_backed_reopen(8, dir.clone());
        assert!(q.is_disk_backed());
        assert_eq!(q.len(), 0);
        assert!(q.insert(fp(1), ChunkEntry::new(1, 0, 0)));
        assert!(q.persist().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_io_error_is_sticky_and_degrades() {
        let (p, dir) = disk_partition(4, "err");
        for i in 0..40 {
            p.insert(fp(i), ChunkEntry::new(i, 0, 0));
        }
        assert!(p.io_error().is_none());
        // Sabotage: truncate the segment files behind the partition's
        // back (the partition holds open handles to the same inodes, so
        // truncation — unlike unlink — breaks its reads).
        let mut truncated = 0;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for e in entries.flatten() {
                let f = std::fs::OpenOptions::new().write(true).open(e.path()).unwrap();
                f.set_len(0).unwrap();
                truncated += 1;
            }
        }
        assert!(truncated > 0, "expected segments on disk");
        // A lookup that needs a disk probe now degrades to a miss and
        // poisons the partition.
        let evicted: Vec<u64> = (0..40).filter(|i| p.peek(&fp(*i)).is_none()).collect();
        assert!(!evicted.is_empty(), "some key must need a disk probe");
        assert!(p.io_error().is_some(), "probe failure must stick");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
