//! A single chunk-index partition with a modelled RAM cache.
//!
//! Both index designs are built from partitions: the monolithic baseline is
//! one big partition; the application-aware index is one partition per
//! [`AppType`](aadedupe_filetype::AppType). A partition is a hash map from
//! fingerprint to [`ChunkEntry`] guarded by a [`parking_lot::Mutex`], plus
//! an [`LruSet`](crate::lru::LruSet) that tracks which fingerprints would
//! currently be RAM-resident if the index were disk-backed with a bounded
//! cache — the mechanism behind the paper's on-disk index lookup
//! bottleneck. Every lookup/insert is classified as a RAM hit or a disk
//! read, and those counts feed the throughput and energy models.

use crate::lru::LruSet;
use crate::{ChunkEntry, IndexStats};
use aadedupe_hashing::Fingerprint;
use parking_lot::Mutex;
use std::collections::HashMap;

/// How a lookup was served by the storage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Fingerprint found, served from the modelled RAM cache.
    HitRam(ChunkEntry),
    /// Fingerprint found, required a modelled disk probe.
    HitDisk(ChunkEntry),
    /// Fingerprint absent, absence determinable in RAM (index smaller than
    /// cache, or negative lookup accelerated by the resident table).
    MissRam,
    /// Fingerprint absent, required a modelled disk probe to prove it.
    MissDisk,
}

impl LookupOutcome {
    /// The entry, if the lookup hit.
    pub fn entry(&self) -> Option<ChunkEntry> {
        match self {
            LookupOutcome::HitRam(e) | LookupOutcome::HitDisk(e) => Some(*e),
            _ => None,
        }
    }

    /// Whether the storage model charged a disk read.
    pub fn touched_disk(&self) -> bool {
        matches!(self, LookupOutcome::HitDisk(_) | LookupOutcome::MissDisk)
    }
}

struct Inner {
    map: HashMap<Fingerprint, ChunkEntry>,
    ram: LruSet<Fingerprint>,
    stats: IndexStats,
}

/// One index partition.
pub struct IndexPartition {
    inner: Mutex<Inner>,
    ram_capacity: usize,
}

impl IndexPartition {
    /// Creates a partition whose modelled RAM cache holds `ram_capacity`
    /// entries.
    pub fn new(ram_capacity: usize) -> Self {
        IndexPartition {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                ram: LruSet::new(ram_capacity),
                stats: IndexStats::default(),
            }),
            ram_capacity,
        }
    }

    /// The modelled RAM cache capacity (entries).
    pub fn ram_capacity(&self) -> usize {
        self.ram_capacity
    }

    /// Full lookup with storage-model classification. On a hit the entry's
    /// reference count is incremented and the fingerprint becomes
    /// most-recently-used.
    pub fn lookup_classified(&self, fp: &Fingerprint) -> LookupOutcome {
        let mut g = self.inner.lock();
        g.stats.lookups += 1;
        // Whether the index currently fits entirely in the cache: if so,
        // even negative lookups are RAM-resident.
        let fits_in_ram = g.map.len() <= g.ram.capacity();
        let in_ram = g.ram.touch(fp);
        match g.map.get_mut(fp) {
            Some(entry) => {
                entry.refcount = entry.refcount.saturating_add(1);
                let entry = *entry;
                g.stats.hits += 1;
                if in_ram || fits_in_ram {
                    g.stats.ram_hits += 1;
                    g.ram.insert(*fp);
                    LookupOutcome::HitRam(entry)
                } else {
                    g.stats.disk_reads += 1;
                    g.ram.insert(*fp);
                    LookupOutcome::HitDisk(entry)
                }
            }
            None => {
                if fits_in_ram {
                    LookupOutcome::MissRam
                } else {
                    // A negative lookup against an over-RAM index must
                    // probe disk (no Bloom filter in the paper's design).
                    g.stats.disk_reads += 1;
                    LookupOutcome::MissDisk
                }
            }
        }
    }

    /// Lookup discarding the RAM/disk classification.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.lookup_classified(fp).entry()
    }

    /// Inserts a new entry; returns `false` if the fingerprint was already
    /// present (the original is kept).
    pub fn insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool {
        let mut g = self.inner.lock();
        use std::collections::hash_map::Entry;
        match g.map.entry(fp) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(entry);
                g.stats.inserts += 1;
                g.ram.insert(fp);
                true
            }
        }
    }

    /// State-restore primitive: if the fingerprint exists, bumps its
    /// reference count; otherwise inserts `entry` as given. Unlike
    /// [`IndexPartition::lookup_classified`], no cache or statistics
    /// accounting happens — this models reloading persisted state, not
    /// serving a query. Returns true if the entry was newly inserted.
    pub fn bump_or_insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool {
        let mut g = self.inner.lock();
        use std::collections::hash_map::Entry;
        match g.map.entry(fp) {
            Entry::Occupied(mut o) => {
                o.get_mut().refcount = o.get().refcount.saturating_add(1);
                false
            }
            Entry::Vacant(v) => {
                v.insert(entry);
                g.ram.insert(fp);
                true
            }
        }
    }

    /// Repoints an entry at a new `(container, offset)` placement while
    /// preserving its length and reference count — the vacuum relocation
    /// primitive. Like [`IndexPartition::bump_or_insert`] this models a
    /// state mutation, not a query: no cache or statistics accounting.
    /// Returns false (and changes nothing) if the fingerprint is absent.
    pub fn update_placement(&self, fp: &Fingerprint, container: u64, offset: u32) -> bool {
        let mut g = self.inner.lock();
        match g.map.get_mut(fp) {
            Some(entry) => {
                entry.container = container;
                entry.offset = offset;
                true
            }
            None => false,
        }
    }

    /// Replaces the partition's contents with exactly `entries` — the
    /// recovery reconciliation primitive. Entries absent from `entries`
    /// are pruned (a stale snapshot resurrected them), present ones take
    /// the given refcount/placement verbatim. Returns `(pruned, added)`
    /// counts relative to the previous contents.
    pub fn reconcile(
        &self,
        entries: impl IntoIterator<Item = (Fingerprint, ChunkEntry)>,
    ) -> (usize, usize) {
        let mut g = self.inner.lock();
        let before = g.map.len();
        let mut kept = 0usize;
        let mut added = 0usize;
        let mut next: HashMap<Fingerprint, ChunkEntry> = HashMap::new();
        for (fp, e) in entries {
            if g.map.contains_key(&fp) {
                kept += 1;
            } else {
                added += 1;
            }
            next.insert(fp, e);
            g.ram.insert(fp);
        }
        let mut stale: Vec<Fingerprint> = g.map.keys().copied().collect();
        stale.sort_unstable();
        for fp in stale {
            if !next.contains_key(&fp) {
                g.ram.remove(&fp);
            }
        }
        let pruned = before - kept;
        g.map = next;
        (pruned, added)
    }

    /// Decrements the reference count; removes and returns the entry when
    /// it reaches zero.
    pub fn release(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        let mut g = self.inner.lock();
        let entry = g.map.get_mut(fp)?;
        entry.refcount = entry.refcount.saturating_sub(1);
        if entry.refcount == 0 {
            let removed = g.map.remove(fp);
            g.ram.remove(fp);
            removed
        } else {
            None
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IndexStats {
        self.inner.lock().stats
    }

    /// Iterates over all `(fingerprint, entry)` pairs into a vector
    /// (used by the snapshot codec). Sorted by fingerprint so snapshot
    /// bytes do not depend on `HashMap` iteration order.
    pub fn dump(&self) -> Vec<(Fingerprint, ChunkEntry)> {
        let g = self.inner.lock();
        let mut entries: Vec<(Fingerprint, ChunkEntry)> =
            g.map.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|(fp, _)| *fp);
        entries
    }

    /// Bulk-loads entries (used by the snapshot codec). Existing entries
    /// with the same fingerprint are overwritten.
    pub fn load(&self, entries: impl IntoIterator<Item = (Fingerprint, ChunkEntry)>) {
        let mut g = self.inner.lock();
        for (fp, e) in entries {
            g.map.insert(fp, e);
            g.ram.insert(fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, &n.to_le_bytes())
    }

    #[test]
    fn insert_then_lookup() {
        let p = IndexPartition::new(100);
        assert!(p.insert(fp(1), ChunkEntry::new(10, 0, 0)));
        assert!(!p.insert(fp(1), ChunkEntry::new(20, 1, 1)), "duplicate insert rejected");
        let got = p.lookup(&fp(1)).unwrap();
        assert_eq!(got.len, 10, "original entry preserved");
        assert!(p.lookup(&fp(2)).is_none());
    }

    #[test]
    fn hits_bump_refcount_and_release_decrements() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(10, 0, 0));
        p.lookup(&fp(1)); // refcount 2
        assert!(p.release(&fp(1)).is_none(), "still referenced");
        let removed = p.release(&fp(1)).expect("last release removes");
        assert_eq!(removed.len, 10);
        assert!(p.lookup(&fp(1)).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn small_index_never_touches_disk() {
        let p = IndexPartition::new(1000);
        for i in 0..500 {
            p.insert(fp(i), ChunkEntry::new(1, 0, i as u32));
        }
        for i in 0..500 {
            assert!(!p.lookup_classified(&fp(i)).touched_disk(), "i={i}");
        }
        for i in 1000..1100 {
            assert_eq!(p.lookup_classified(&fp(i)), LookupOutcome::MissRam);
        }
        assert_eq!(p.stats().disk_reads, 0);
    }

    #[test]
    fn oversized_index_pays_disk_reads() {
        let p = IndexPartition::new(10);
        for i in 0..1000 {
            p.insert(fp(i), ChunkEntry::new(1, 0, i as u32));
        }
        // Cold lookups over a large key space: almost everything misses the
        // tiny cache.
        let mut disk = 0;
        for i in 0..1000 {
            if p.lookup_classified(&fp(i)).touched_disk() {
                disk += 1;
            }
        }
        assert!(disk >= 900, "expected most lookups on disk, got {disk}");
        // Immediately repeated lookups are RAM hits (cache locality).
        assert!(!p.lookup_classified(&fp(999)).touched_disk());
    }

    #[test]
    fn negative_lookup_on_big_index_probes_disk() {
        let p = IndexPartition::new(10);
        for i in 0..100 {
            p.insert(fp(i), ChunkEntry::new(1, 0, 0));
        }
        assert_eq!(p.lookup_classified(&fp(777)), LookupOutcome::MissDisk);
    }

    #[test]
    fn stats_accounting() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(1, 0, 0));
        p.lookup(&fp(1));
        p.lookup(&fp(2));
        let s = p.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn dump_and_load_round_trip() {
        let p = IndexPartition::new(100);
        for i in 0..50 {
            p.insert(fp(i), ChunkEntry::new(i, i, i as u32));
        }
        let mut dumped = p.dump();
        dumped.sort_by_key(|(f, _)| f.prefix64());
        let q = IndexPartition::new(100);
        q.load(dumped.clone());
        assert_eq!(q.len(), 50);
        for (f, e) in dumped {
            assert_eq!(q.lookup(&f).map(|x| (x.len, x.container)), Some((e.len, e.container)));
        }
    }

    #[test]
    fn update_placement_preserves_len_and_refcount() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(10, 7, 3));
        p.lookup(&fp(1)); // refcount 2
        assert!(p.update_placement(&fp(1), 42, 99));
        let e = p.lookup(&fp(1)).unwrap(); // refcount 3
        assert_eq!((e.len, e.container, e.offset), (10, 42, 99));
        assert!(p.release(&fp(1)).is_none());
        assert!(p.release(&fp(1)).is_none());
        assert!(p.release(&fp(1)).is_some(), "refcount survived the move");
        assert!(!p.update_placement(&fp(1), 0, 0), "absent fp is a no-op");
    }

    #[test]
    fn reconcile_prunes_fixes_and_adds() {
        let p = IndexPartition::new(100);
        p.insert(fp(1), ChunkEntry::new(10, 0, 0)); // stays, refcount corrected
        p.insert(fp(2), ChunkEntry::new(20, 0, 16)); // pruned (stale)
        let mut truth = ChunkEntry::new(10, 5, 0);
        truth.refcount = 3;
        let (pruned, added) =
            p.reconcile([(fp(1), truth), (fp(3), ChunkEntry::new(30, 6, 0))]);
        assert_eq!((pruned, added), (1, 1));
        assert_eq!(p.len(), 2);
        assert!(p.lookup(&fp(2)).is_none());
        let e = p.lookup(&fp(1)).unwrap(); // refcount now 4
        assert_eq!(e.container, 5);
        for _ in 0..3 {
            assert!(p.release(&fp(1)).is_none(), "reconciled refcount respected");
        }
        assert!(p.release(&fp(1)).is_some());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let p = Arc::new(IndexPartition::new(10_000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let k = t * 1000 + i;
                    p.insert(fp(k), ChunkEntry::new(k, 0, 0));
                    assert!(p.lookup(&fp(k)).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.len(), 4000);
    }
}
