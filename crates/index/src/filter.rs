//! A deterministic, std-only cuckoo existence filter.
//!
//! The paper's partitioning keeps each application's chunk index *small*,
//! but at fleet scale even a per-application partition outgrows its RAM
//! budget and spills to disk segments ([`segment`](crate::segment)). The
//! common case in a backup stream is then a **negative** lookup — a chunk
//! the index has never seen — and without help every one of those would
//! probe the on-disk segments. This filter answers "definitely absent"
//! from a few bytes of RAM so the overwhelmingly-common new-chunk case
//! never touches disk (the biu back-it-up dedup flow builds the same
//! prefilter with a `CuckooFilter` over written-file hashes).
//!
//! Design: a classic partial-key cuckoo filter — `SLOTS_PER_BUCKET`
//! 16-bit tags per bucket, two candidate buckets per key
//! (`i2 = i1 ^ hash(tag)`), bounded eviction chains. Unlike a Bloom
//! filter it supports *deletion*, which the index needs when a release
//! drops a fingerprint's last reference.
//!
//! Everything is deterministic: tag/bucket derivation hashes the full
//! fingerprint digest with FNV-1a, and the eviction path uses an internal
//! splitmix64 counter whose state is part of the filter — the same operation sequence
//! always produces the same filter, which the serial↔parallel
//! differential suite relies on.
//!
//! When an insert fails (an eviction chain exceeds its bound — the
//! filter is effectively full), [`CuckooFilter::insert`] returns
//! [`FilterFull`]; the caller rebuilds at a larger capacity from the
//! authoritative key set (the partition knows every live fingerprint).

use aadedupe_hashing::Fingerprint;

/// Tags per bucket. Four is the standard sweet spot: ~95% achievable
/// load factor with two candidate buckets.
const SLOTS_PER_BUCKET: usize = 4;

/// Upper bound on one insert's eviction chain before declaring the
/// filter full.
const MAX_KICKS: usize = 500;

/// An insert failed because the filter could not place the tag within
/// [`MAX_KICKS`] evictions — the filter is effectively full. One
/// displaced tag is dropped in the process, so the filter may now
/// report false negatives: the caller MUST rebuild it (at a larger
/// capacity, from the authoritative key set) before serving lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterFull;

impl std::fmt::Display for FilterFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cuckoo filter full")
    }
}

impl std::error::Error for FilterFull {}

/// Deterministic cuckoo existence filter over chunk fingerprints.
pub struct CuckooFilter {
    /// `buckets * SLOTS_PER_BUCKET` tags; 0 = empty slot.
    slots: Vec<u16>,
    /// Bucket count (power of two).
    buckets: usize,
    /// Live tag count.
    len: usize,
    /// Deterministic eviction-path randomness; evolves with the
    /// operation sequence, never reads a clock.
    rng: u64,
}

/// FNV-1a 64-bit over the fingerprint's algorithm tag and digest bytes.
fn hash_fingerprint(fp: &Fingerprint) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    step(fp.algorithm().tag());
    for &b in fp.digest() {
        step(b);
    }
    h
}

/// Mixes a tag into a bucket displacement (the `i1 ^ hash(tag)` term).
/// splitmix64 finalizer — strong enough that tag-correlated buckets do
/// not cluster.
fn hash_tag(tag: u16) -> u64 {
    let mut z = u64::from(tag).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CuckooFilter {
    /// A filter able to hold roughly `capacity` keys (rounded up to a
    /// power-of-two bucket count; the achievable load factor is ~95%).
    pub fn with_capacity(capacity: usize) -> Self {
        let want_buckets = capacity.max(SLOTS_PER_BUCKET).div_ceil(SLOTS_PER_BUCKET);
        let buckets = want_buckets.next_power_of_two();
        CuckooFilter {
            slots: vec![0u16; buckets * SLOTS_PER_BUCKET],
            buckets,
            len: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Live tag count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tags are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Nominal capacity (total slots).
    pub fn capacity(&self) -> usize {
        self.buckets * SLOTS_PER_BUCKET
    }

    /// RAM held by the slot table, in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u16>()
    }

    /// The (tag, bucket-1, bucket-2) triple for a fingerprint.
    fn place(&self, fp: &Fingerprint) -> (u16, usize, usize) {
        let h = hash_fingerprint(fp);
        // Tag from the high bits, bucket from the low; tag 0 is reserved
        // for "empty slot".
        let tag = (((h >> 48) as u16) | 1).max(1);
        let mask = self.buckets - 1;
        let i1 = (h as usize) & mask;
        let i2 = i1 ^ (hash_tag(tag) as usize & mask);
        (tag, i1, i2)
    }

    fn bucket(&self, i: usize) -> &[u16] {
        // aalint: allow(panic-path) -- bucket indices are masked to buckets - 1 (a power of two); slots holds buckets * SLOTS_PER_BUCKET
        &self.slots[i * SLOTS_PER_BUCKET..(i + 1) * SLOTS_PER_BUCKET]
    }

    fn bucket_mut(&mut self, i: usize) -> &mut [u16] {
        // aalint: allow(panic-path) -- same mask bound as bucket()
        &mut self.slots[i * SLOTS_PER_BUCKET..(i + 1) * SLOTS_PER_BUCKET]
    }

    fn try_place(&mut self, bucket: usize, tag: u16) -> bool {
        for slot in self.bucket_mut(bucket) {
            if *slot == 0 {
                *slot = tag;
                return true;
            }
        }
        false
    }

    /// Whether the filter *may* contain `fp`. False means definitely
    /// absent; true means present or a false positive (rate ≈
    /// `2 * SLOTS_PER_BUCKET / 2^16` per lookup at full load).
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        let (tag, i1, i2) = self.place(fp);
        self.bucket(i1).contains(&tag) || self.bucket(i2).contains(&tag)
    }

    /// Inserts `fp`'s tag. Duplicate inserts of the same fingerprint
    /// store duplicate tags (and need matching deletes) — the index
    /// never double-inserts, so this does not arise there.
    pub fn insert(&mut self, fp: &Fingerprint) -> Result<(), FilterFull> {
        let (tag, i1, i2) = self.place(fp);
        if self.try_place(i1, tag) || self.try_place(i2, tag) {
            self.len += 1;
            return Ok(());
        }
        // Both candidate buckets full: walk a bounded eviction chain,
        // deterministically choosing the victim slot.
        let mut tag = tag;
        let mut bucket = if self.next_rand() & 1 == 0 { i1 } else { i2 };
        let mask = self.buckets - 1;
        for _ in 0..MAX_KICKS {
            let victim_slot = (self.next_rand() as usize) % SLOTS_PER_BUCKET;
            let slots = self.bucket_mut(bucket);
            // aalint: allow(panic-path) -- victim_slot < SLOTS_PER_BUCKET by the modulo; the slice is exactly that long
            std::mem::swap(&mut tag, &mut slots[victim_slot]);
            bucket ^= hash_tag(tag) as usize & mask;
            if self.try_place(bucket, tag) {
                self.len += 1;
                return Ok(());
            }
        }
        // Chain exhausted: the tag in hand is dropped, which may orphan
        // a previously-inserted key (false negatives possible from here
        // on). That is acceptable only because the caller's contract is
        // to rebuild from the authoritative key set on this error.
        Err(FilterFull)
    }

    /// Removes one instance of `fp`'s tag. Returns whether a tag was
    /// removed. Deleting a never-inserted key can (rarely) remove a
    /// colliding key's tag — the index only deletes keys it inserted.
    pub fn delete(&mut self, fp: &Fingerprint) -> bool {
        let (tag, i1, i2) = self.place(fp);
        for &i in &[i1, i2] {
            for slot in self.bucket_mut(i) {
                if *slot == tag {
                    *slot = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Appends the filter's complete state (bucket count, live count,
    /// eviction-rng state, slot table) to `out` in little-endian. The
    /// encoding is exactly what [`CuckooFilter::decode`] accepts, so a
    /// persisted partition can restore its prefilter without re-reading
    /// any segment.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.buckets as u64).to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&self.rng.to_le_bytes());
        for &slot in &self.slots {
            out.extend_from_slice(&slot.to_le_bytes());
        }
    }

    /// Number of bytes [`CuckooFilter::encode`] produces for this filter.
    pub fn encoded_len(&self) -> usize {
        24 + self.slots.len() * 2
    }

    /// Decodes a filter from the front of `buf`, returning it and the
    /// number of bytes consumed. `None` on any structural problem:
    /// truncation, a bucket count that is zero or not a power of two, or
    /// a live count disagreeing with the slot table. Never panics and
    /// never allocates more than `buf` can actually back.
    pub fn decode(buf: &[u8]) -> Option<(CuckooFilter, usize)> {
        let word = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
        };
        let buckets_u64 = word(0)?;
        let len = word(8)?;
        let rng = word(16)?;
        let buckets = usize::try_from(buckets_u64).ok()?;
        if buckets == 0 || !buckets.is_power_of_two() {
            return None;
        }
        let slot_count = buckets.checked_mul(SLOTS_PER_BUCKET)?;
        let slot_bytes = slot_count.checked_mul(2)?;
        // Bound the allocation by what the buffer can actually hold
        // before reserving anything — a corrupt bucket count must not
        // become a multi-gigabyte Vec.
        let table = buf.get(24..24 + slot_bytes)?;
        if len > slot_count as u64 {
            return None;
        }
        let mut slots = Vec::with_capacity(slot_count);
        let mut live = 0u64;
        for pair in table.chunks_exact(2) {
            let tag = u16::from_le_bytes(pair.try_into().ok()?);
            if tag != 0 {
                live += 1;
            }
            slots.push(tag);
        }
        if live != len {
            return None;
        }
        Some((
            CuckooFilter { slots, buckets, len: len as usize, rng },
            24 + slot_bytes,
        ))
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64 step: full-period, deterministic.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, &n.to_le_bytes())
    }

    #[test]
    fn no_false_negatives() {
        let mut f = CuckooFilter::with_capacity(4096);
        for i in 0..2000 {
            f.insert(&fp(i)).expect("capacity 4096 holds 2000");
        }
        for i in 0..2000 {
            assert!(f.contains(&fp(i)), "false negative at {i}");
        }
        assert_eq!(f.len(), 2000);
    }

    #[test]
    fn delete_removes_and_len_tracks() {
        let mut f = CuckooFilter::with_capacity(1024);
        for i in 0..500 {
            f.insert(&fp(i)).unwrap();
        }
        for i in 0..250 {
            assert!(f.delete(&fp(i)), "delete {i}");
        }
        assert_eq!(f.len(), 250);
        for i in 250..500 {
            assert!(f.contains(&fp(i)), "survivor {i} still present");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            let mut f = CuckooFilter::with_capacity(2048);
            for i in 0..1500 {
                f.insert(&fp(i)).unwrap();
            }
            for i in (0..1500).step_by(3) {
                f.delete(&fp(i));
            }
            f.slots.clone()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn overflow_reports_full() {
        let mut f = CuckooFilter::with_capacity(SLOTS_PER_BUCKET);
        let mut full = false;
        for i in 0..10_000 {
            if f.insert(&fp(i)).is_err() {
                full = true;
                break;
            }
        }
        assert!(full, "tiny filter must eventually report full");
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut f = CuckooFilter::with_capacity(2048);
        for i in 0..1200 {
            f.insert(&fp(i)).unwrap();
        }
        for i in (0..1200).step_by(5) {
            f.delete(&fp(i));
        }
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = CuckooFilter::decode(&bytes).expect("round trip");
        assert_eq!(used, bytes.len());
        assert_eq!(back.len(), f.len());
        assert_eq!(back.slots, f.slots);
        assert_eq!(back.rng, f.rng);
        // The restored filter answers identically.
        for i in 0..1200 {
            assert_eq!(back.contains(&fp(i)), f.contains(&fp(i)), "i={i}");
        }
        // And keeps evolving identically (rng state restored).
        let mut a = f;
        let mut b = back;
        for i in 5000..5200 {
            assert_eq!(a.insert(&fp(i)), b.insert(&fp(i)));
        }
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut f = CuckooFilter::with_capacity(512);
        for i in 0..300 {
            f.insert(&fp(i)).unwrap();
        }
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        // Truncation at every prefix never panics.
        for n in 0..bytes.len() {
            assert!(CuckooFilter::decode(&bytes[..n]).is_none(), "prefix {n}");
        }
        // Non-power-of-two bucket count.
        let mut bad = bytes.clone();
        bad[0] = bad[0].wrapping_add(1);
        assert!(CuckooFilter::decode(&bad).is_none());
        // Live count disagreeing with the slot table.
        let mut bad = bytes.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(CuckooFilter::decode(&bad).is_none());
        // Absurd bucket count must not allocate.
        let mut bad = bytes.clone();
        bad[5] = 0x40; // buckets |= 1 << 46
        assert!(CuckooFilter::decode(&bad).is_none());
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let mut f = CuckooFilter::with_capacity(16 * 1024);
        for i in 0..10_000 {
            f.insert(&fp(i)).unwrap();
        }
        let mut fps = 0usize;
        let probes = 100_000u64;
        for i in 0..probes {
            if f.contains(&fp(1_000_000 + i)) {
                fps += 1;
            }
        }
        // Theory: ~ 2 buckets * 4 slots / 2^16 ≈ 1.2e-4 per probe at full
        // load; we are under half load. Allow an order of magnitude.
        let rate = fps as f64 / probes as f64;
        assert!(rate < 2e-3, "false positive rate {rate} too high");
    }
}
