//! A deterministic, std-only cuckoo existence filter.
//!
//! The paper's partitioning keeps each application's chunk index *small*,
//! but at fleet scale even a per-application partition outgrows its RAM
//! budget and spills to disk segments ([`segment`](crate::segment)). The
//! common case in a backup stream is then a **negative** lookup — a chunk
//! the index has never seen — and without help every one of those would
//! probe the on-disk segments. This filter answers "definitely absent"
//! from a few bytes of RAM so the overwhelmingly-common new-chunk case
//! never touches disk (the biu back-it-up dedup flow builds the same
//! prefilter with a `CuckooFilter` over written-file hashes).
//!
//! Design: a classic partial-key cuckoo filter — `SLOTS_PER_BUCKET`
//! 16-bit tags per bucket, two candidate buckets per key
//! (`i2 = i1 ^ hash(tag)`), bounded eviction chains. Unlike a Bloom
//! filter it supports *deletion*, which the index needs when a release
//! drops a fingerprint's last reference.
//!
//! Everything is deterministic: tag/bucket derivation hashes the full
//! fingerprint digest with FNV-1a, and the eviction path uses an internal
//! splitmix64 counter whose state is part of the filter — the same operation sequence
//! always produces the same filter, which the serial↔parallel
//! differential suite relies on.
//!
//! When an insert fails (an eviction chain exceeds its bound — the
//! filter is effectively full), [`CuckooFilter::insert`] returns
//! [`FilterFull`]; the caller rebuilds at a larger capacity from the
//! authoritative key set (the partition knows every live fingerprint).

use aadedupe_hashing::Fingerprint;

/// Tags per bucket. Four is the standard sweet spot: ~95% achievable
/// load factor with two candidate buckets.
const SLOTS_PER_BUCKET: usize = 4;

/// Upper bound on one insert's eviction chain before declaring the
/// filter full.
const MAX_KICKS: usize = 500;

/// An insert failed because the filter could not place the tag within
/// [`MAX_KICKS`] evictions — the filter is effectively full. One
/// displaced tag is dropped in the process, so the filter may now
/// report false negatives: the caller MUST rebuild it (at a larger
/// capacity, from the authoritative key set) before serving lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterFull;

impl std::fmt::Display for FilterFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cuckoo filter full")
    }
}

impl std::error::Error for FilterFull {}

/// Deterministic cuckoo existence filter over chunk fingerprints.
pub struct CuckooFilter {
    /// `buckets * SLOTS_PER_BUCKET` tags; 0 = empty slot.
    slots: Vec<u16>,
    /// Bucket count (power of two).
    buckets: usize,
    /// Live tag count.
    len: usize,
    /// Deterministic eviction-path randomness; evolves with the
    /// operation sequence, never reads a clock.
    rng: u64,
}

/// FNV-1a 64-bit over the fingerprint's algorithm tag and digest bytes.
fn hash_fingerprint(fp: &Fingerprint) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    step(fp.algorithm().tag());
    for &b in fp.digest() {
        step(b);
    }
    h
}

/// Mixes a tag into a bucket displacement (the `i1 ^ hash(tag)` term).
/// splitmix64 finalizer — strong enough that tag-correlated buckets do
/// not cluster.
fn hash_tag(tag: u16) -> u64 {
    let mut z = u64::from(tag).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CuckooFilter {
    /// A filter able to hold roughly `capacity` keys (rounded up to a
    /// power-of-two bucket count; the achievable load factor is ~95%).
    pub fn with_capacity(capacity: usize) -> Self {
        let want_buckets = capacity.max(SLOTS_PER_BUCKET).div_ceil(SLOTS_PER_BUCKET);
        let buckets = want_buckets.next_power_of_two();
        CuckooFilter {
            slots: vec![0u16; buckets * SLOTS_PER_BUCKET],
            buckets,
            len: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Live tag count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tags are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Nominal capacity (total slots).
    pub fn capacity(&self) -> usize {
        self.buckets * SLOTS_PER_BUCKET
    }

    /// RAM held by the slot table, in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u16>()
    }

    /// The (tag, bucket-1, bucket-2) triple for a fingerprint.
    fn place(&self, fp: &Fingerprint) -> (u16, usize, usize) {
        let h = hash_fingerprint(fp);
        // Tag from the high bits, bucket from the low; tag 0 is reserved
        // for "empty slot".
        let tag = (((h >> 48) as u16) | 1).max(1);
        let mask = self.buckets - 1;
        let i1 = (h as usize) & mask;
        let i2 = i1 ^ (hash_tag(tag) as usize & mask);
        (tag, i1, i2)
    }

    fn bucket(&self, i: usize) -> &[u16] {
        &self.slots[i * SLOTS_PER_BUCKET..(i + 1) * SLOTS_PER_BUCKET]
    }

    fn bucket_mut(&mut self, i: usize) -> &mut [u16] {
        &mut self.slots[i * SLOTS_PER_BUCKET..(i + 1) * SLOTS_PER_BUCKET]
    }

    fn try_place(&mut self, bucket: usize, tag: u16) -> bool {
        for slot in self.bucket_mut(bucket) {
            if *slot == 0 {
                *slot = tag;
                return true;
            }
        }
        false
    }

    /// Whether the filter *may* contain `fp`. False means definitely
    /// absent; true means present or a false positive (rate ≈
    /// `2 * SLOTS_PER_BUCKET / 2^16` per lookup at full load).
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        let (tag, i1, i2) = self.place(fp);
        self.bucket(i1).contains(&tag) || self.bucket(i2).contains(&tag)
    }

    /// Inserts `fp`'s tag. Duplicate inserts of the same fingerprint
    /// store duplicate tags (and need matching deletes) — the index
    /// never double-inserts, so this does not arise there.
    pub fn insert(&mut self, fp: &Fingerprint) -> Result<(), FilterFull> {
        let (tag, i1, i2) = self.place(fp);
        if self.try_place(i1, tag) || self.try_place(i2, tag) {
            self.len += 1;
            return Ok(());
        }
        // Both candidate buckets full: walk a bounded eviction chain,
        // deterministically choosing the victim slot.
        let mut tag = tag;
        let mut bucket = if self.next_rand() & 1 == 0 { i1 } else { i2 };
        let mask = self.buckets - 1;
        for _ in 0..MAX_KICKS {
            let victim_slot = (self.next_rand() as usize) % SLOTS_PER_BUCKET;
            let slots = self.bucket_mut(bucket);
            std::mem::swap(&mut tag, &mut slots[victim_slot]);
            bucket ^= hash_tag(tag) as usize & mask;
            if self.try_place(bucket, tag) {
                self.len += 1;
                return Ok(());
            }
        }
        // Chain exhausted: the tag in hand is dropped, which may orphan
        // a previously-inserted key (false negatives possible from here
        // on). That is acceptable only because the caller's contract is
        // to rebuild from the authoritative key set on this error.
        Err(FilterFull)
    }

    /// Removes one instance of `fp`'s tag. Returns whether a tag was
    /// removed. Deleting a never-inserted key can (rarely) remove a
    /// colliding key's tag — the index only deletes keys it inserted.
    pub fn delete(&mut self, fp: &Fingerprint) -> bool {
        let (tag, i1, i2) = self.place(fp);
        for &i in &[i1, i2] {
            for slot in self.bucket_mut(i) {
                if *slot == tag {
                    *slot = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64 step: full-period, deterministic.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, &n.to_le_bytes())
    }

    #[test]
    fn no_false_negatives() {
        let mut f = CuckooFilter::with_capacity(4096);
        for i in 0..2000 {
            f.insert(&fp(i)).expect("capacity 4096 holds 2000");
        }
        for i in 0..2000 {
            assert!(f.contains(&fp(i)), "false negative at {i}");
        }
        assert_eq!(f.len(), 2000);
    }

    #[test]
    fn delete_removes_and_len_tracks() {
        let mut f = CuckooFilter::with_capacity(1024);
        for i in 0..500 {
            f.insert(&fp(i)).unwrap();
        }
        for i in 0..250 {
            assert!(f.delete(&fp(i)), "delete {i}");
        }
        assert_eq!(f.len(), 250);
        for i in 250..500 {
            assert!(f.contains(&fp(i)), "survivor {i} still present");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            let mut f = CuckooFilter::with_capacity(2048);
            for i in 0..1500 {
                f.insert(&fp(i)).unwrap();
            }
            for i in (0..1500).step_by(3) {
                f.delete(&fp(i));
            }
            f.slots.clone()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn overflow_reports_full() {
        let mut f = CuckooFilter::with_capacity(SLOTS_PER_BUCKET);
        let mut full = false;
        for i in 0..10_000 {
            if f.insert(&fp(i)).is_err() {
                full = true;
                break;
            }
        }
        assert!(full, "tiny filter must eventually report full");
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let mut f = CuckooFilter::with_capacity(16 * 1024);
        for i in 0..10_000 {
            f.insert(&fp(i)).unwrap();
        }
        let mut fps = 0usize;
        let probes = 100_000u64;
        for i in 0..probes {
            if f.contains(&fp(1_000_000 + i)) {
                fps += 1;
            }
        }
        // Theory: ~ 2 buckets * 4 slots / 2^16 ≈ 1.2e-4 per probe at full
        // load; we are under half load. Allow an order of magnitude.
        let rate = fps as f64 / probes as f64;
        assert!(rate < 2e-3, "false positive rate {rate} too high");
    }
}
