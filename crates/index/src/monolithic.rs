//! The monolithic (single, full, unclassified) chunk index baseline.
//!
//! This is the structure traditional source dedup clients (Avamar-style)
//! maintain: every chunk of every application in one index. With the same
//! total RAM budget as the application-aware index, its working set
//! exceeds the cache as soon as the dataset is non-trivial, so lookups
//! degrade to modelled disk probes — the bottleneck quantified by the
//! `ablation_index` bench.

use crate::partition::IndexPartition;
use crate::{ChunkEntry, ChunkIndex, IndexStats, LookupOutcome};
use aadedupe_hashing::Fingerprint;

/// Single-partition chunk index.
pub struct MonolithicIndex {
    partition: IndexPartition,
}

impl MonolithicIndex {
    /// Creates a monolithic index with `ram_capacity` cacheable entries.
    pub fn new(ram_capacity: usize) -> Self {
        MonolithicIndex {
            partition: IndexPartition::new(ram_capacity),
        }
    }

    /// Classified lookup (RAM vs disk), for callers modelling lookup cost.
    pub fn lookup_classified(&self, fp: &Fingerprint) -> LookupOutcome {
        self.partition.lookup_classified(fp)
    }

    /// Access to the underlying partition (snapshot codec).
    pub fn partition(&self) -> &IndexPartition {
        &self.partition
    }
}

impl ChunkIndex for MonolithicIndex {
    fn lookup(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.partition.lookup(fp)
    }

    fn insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool {
        self.partition.insert(fp, entry)
    }

    fn release(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.partition.release(fp)
    }

    fn len(&self) -> usize {
        self.partition.len()
    }

    fn stats(&self) -> IndexStats {
        self.partition.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Md5, &n.to_le_bytes())
    }

    #[test]
    fn trait_object_usable() {
        let idx: Box<dyn ChunkIndex> = Box::new(MonolithicIndex::new(100));
        assert!(idx.insert(fp(1), ChunkEntry::new(8, 0, 0)));
        assert!(idx.lookup(&fp(1)).is_some());
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    #[test]
    fn grows_past_ram_and_pays_for_it() {
        let idx = MonolithicIndex::new(64);
        for i in 0..10_000 {
            idx.insert(fp(i), ChunkEntry::new(1, 0, 0));
        }
        for i in 0..10_000 {
            idx.lookup(&fp(i));
        }
        let s = idx.stats();
        assert!(s.disk_reads > 9_000, "disk reads: {}", s.disk_reads);
    }
}
