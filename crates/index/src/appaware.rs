//! The application-aware index structure (paper §III.E, Fig. 6).
//!
//! One independent [`IndexPartition`] per [`AppType`]. An incoming chunk is
//! directed to the partition of its file's application type; the other
//! partitions are never touched. Consequences, exactly as the paper
//! argues:
//!
//! 1. **Small indices** — each partition covers one application's chunks,
//!    so it stays within its RAM cache for realistic personal datasets,
//!    avoiding on-disk index probes.
//! 2. **No lost dedup** — cross-application chunk sharing is negligible
//!    (Observation 2), so partitioning by type barely changes the dedup
//!    ratio; the `obs2_cross_app_sharing` bench measures this.
//! 3. **Parallelism** — partitions are independently locked, so lookups
//!    for different applications proceed concurrently
//!    ([`AppAwareIndex::lookup_batch_parallel`]).

use crate::partition::{IndexPartition, RamFootprint};
use crate::{ChunkEntry, ChunkIndex, IndexStats, LookupOutcome};
use aadedupe_filetype::AppType;
use aadedupe_hashing::Fingerprint;
use aadedupe_obs::{Counter, Recorder, Stage};
use std::path::Path;
use std::sync::Arc;

/// Per-application chunk index.
pub struct AppAwareIndex {
    /// Indexed by `AppType::tag() - 1`.
    partitions: Vec<IndexPartition>,
    recorder: Arc<Recorder>,
}

impl AppAwareIndex {
    /// Creates an index whose partitions each cache `ram_per_partition`
    /// entries.
    ///
    /// To compare fairly against [`MonolithicIndex`](crate::MonolithicIndex)
    /// under an equal total RAM budget, pass `total_ram / AppType::ALL.len()`.
    pub fn new(ram_per_partition: usize) -> Self {
        AppAwareIndex {
            partitions: AppType::ALL
                .iter()
                .map(|_| IndexPartition::new(ram_per_partition))
                .collect(),
            recorder: Recorder::shared_disabled(),
        }
    }

    /// Creates a disk-backed index rooted at `dir`: each partition keeps at
    /// most `ram_per_partition` entries cached in RAM and spills the rest
    /// to its own segment subdirectory (`p01/`..`p13/` by application tag),
    /// guarded by a per-partition existence filter.
    pub fn disk_backed(ram_per_partition: usize, dir: &Path) -> Self {
        AppAwareIndex {
            partitions: AppType::ALL
                .iter()
                .map(|t| {
                    IndexPartition::disk_backed(
                        ram_per_partition,
                        dir.join(format!("p{:02}", t.tag())),
                    )
                })
                .collect(),
            recorder: Recorder::shared_disabled(),
        }
    }

    /// Reopens a disk-backed index whose partitions were persisted under
    /// `dir` by [`AppAwareIndex::persist`]. Each partition restores its
    /// existence filter and segment fence indexes from its checksummed
    /// manifest — zero segment reads — falling back to a full per-segment
    /// sweep if a manifest is missing or corrupt.
    pub fn disk_backed_reopen(ram_per_partition: usize, dir: &Path) -> Self {
        AppAwareIndex {
            partitions: AppType::ALL
                .iter()
                .map(|t| {
                    IndexPartition::disk_backed_reopen(
                        ram_per_partition,
                        dir.join(format!("p{:02}", t.tag())),
                    )
                })
                .collect(),
            recorder: Recorder::shared_disabled(),
        }
    }

    /// Durably persists every disk-backed partition (dirty cache slots
    /// flushed, manifest written atomically). Stops at the first failing
    /// partition; resident partitions are no-ops.
    pub fn persist(&self) -> Result<(), crate::segment::SegmentError> {
        for p in &self.partitions {
            p.persist()?;
        }
        Ok(())
    }

    /// True when the partitions spill to on-disk segments.
    pub fn is_disk_backed(&self) -> bool {
        self.partitions.first().is_some_and(IndexPartition::is_disk_backed)
    }

    /// The first storage-layer IO error any partition has hit, if any.
    /// Disk-backed partitions degrade (absence answers, duplicate storage)
    /// rather than fail, so callers must poll this before trusting a
    /// session's dedup accounting enough to commit state.
    pub fn io_error(&self) -> Option<String> {
        self.partitions.iter().find_map(IndexPartition::io_error)
    }

    /// Aggregate RAM footprint across all partitions.
    pub fn ram_footprint(&self) -> RamFootprint {
        let mut total = RamFootprint::default();
        for p in &self.partitions {
            total.merge(&p.ram_footprint());
        }
        total
    }

    /// Routes this index's lookup observations (stage latency, per-app
    /// hit/miss, disk probes) to `recorder`.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// The partition serving an application type.
    pub fn partition(&self, app: AppType) -> &IndexPartition {
        // aalint: allow(panic-path) -- AppType tags are 1..=ALL.len(); partitions has one slot per variant
        &self.partitions[(app.tag() - 1) as usize]
    }

    /// All `(AppType, partition)` pairs.
    pub fn partitions(&self) -> impl Iterator<Item = (AppType, &IndexPartition)> {
        AppType::ALL.iter().map(move |&t| (t, self.partition(t)))
    }

    /// Classified lookup within one application's partition.
    pub fn lookup_classified(&self, app: AppType, fp: &Fingerprint) -> LookupOutcome {
        let started = self.recorder.start();
        let (outcome, trace) = self.partition(app).lookup_traced(fp);
        self.recorder.record(Stage::Index, started);
        if started.is_some() {
            self.recorder.index_outcome(app.tag(), outcome.entry().is_some());
            if trace.disk_probes > 0 {
                self.recorder.count(Counter::IndexDiskProbes, trace.disk_probes);
            }
            if trace.filter_short_circuit {
                self.recorder.count(Counter::FilterHits, 1);
            }
            if trace.filter_false_positive {
                self.recorder.count(Counter::FilterFalsePositives, 1);
            }
        }
        outcome
    }

    /// Lookup within one application's partition.
    pub fn lookup(&self, app: AppType, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.lookup_classified(app, fp).entry()
    }

    /// Insert into one application's partition.
    ///
    /// Thread-safety: every partition method takes `&self` and locks only
    /// that partition's mutex, so concurrent inserts/lookups against
    /// *different* applications never contend, and concurrent access to
    /// the *same* partition is serialized but safe. The parallel backup
    /// pipeline exploits this by giving each application's dedup shard
    /// exclusive use of its own partition: within a shard the
    /// lookup→insert sequence needs no extra synchronisation because no
    /// other thread touches that partition.
    pub fn insert(&self, app: AppType, fp: Fingerprint, entry: ChunkEntry) -> bool {
        self.partition(app).insert(fp, entry)
    }

    /// Inserts a batch of entries, returning how many were new. Entries
    /// are applied in order; a repeated fingerprint within the batch keeps
    /// its first entry (same outcome as repeated [`insert`](Self::insert)
    /// calls). Safe to call concurrently with any other index operation.
    pub fn insert_batch(
        &self,
        entries: &[(AppType, Fingerprint, ChunkEntry)],
    ) -> usize {
        entries
            .iter()
            .filter(|(app, fp, entry)| self.insert(*app, *fp, *entry))
            .count()
    }

    /// Release from one application's partition.
    pub fn release(&self, app: AppType, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.partition(app).release(fp)
    }

    /// Repoints one application's entry at a new `(container, offset)`
    /// placement, preserving refcount — the vacuum relocation primitive.
    /// Returns false if the fingerprint is absent from that partition.
    pub fn update_placement(
        &self,
        app: AppType,
        fp: &Fingerprint,
        container: u64,
        offset: u32,
    ) -> bool {
        self.partition(app).update_placement(fp, container, offset)
    }

    /// Total entries across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(super::partition::IndexPartition::len).sum()
    }

    /// True when all partitions are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merged statistics across partitions.
    pub fn stats(&self) -> IndexStats {
        let mut s = IndexStats::default();
        for p in &self.partitions {
            s.merge(&p.stats());
        }
        s
    }

    /// Looks up many `(app, fingerprint)` pairs concurrently, one scoped
    /// thread per application type present in the batch — the "index access
    /// parallelism" the paper's future work highlights. Result order
    /// matches input order.
    pub fn lookup_batch_parallel(
        &self,
        queries: &[(AppType, Fingerprint)],
    ) -> Vec<Option<ChunkEntry>> {
        let mut results: Vec<Option<ChunkEntry>> = vec![None; queries.len()];
        // Group query positions by partition.
        let mut by_app: Vec<Vec<usize>> = AppType::ALL.iter().map(|_| Vec::new()).collect();
        for (i, (app, _)) in queries.iter().enumerate() {
            // aalint: allow(panic-path) -- AppType tags are 1..=ALL.len(); by_app has one slot per variant
            by_app[(app.tag() - 1) as usize].push(i);
        }
        // Hand each non-empty group to its own thread; each thread writes
        // disjoint positions of `results` through a channel-free split.
        let mut slots: Vec<(usize, Option<ChunkEntry>)> = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (tag_idx, positions) in by_app.into_iter().enumerate() {
                if positions.is_empty() {
                    continue;
                }
                // aalint: allow(panic-path) -- tag_idx < AppType::ALL.len() = partitions.len() via enumerate over by_app
                let partition = &self.partitions[tag_idx];
                handles.push(scope.spawn(move || {
                    positions
                        .into_iter()
                        // aalint: allow(panic-path) -- i came from enumerate over queries
                        .map(|i| (i, partition.lookup(&queries[i].1)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(part) => slots.extend(part),
                    // Re-raise the worker's panic payload on the caller
                    // thread instead of replacing it with our own message.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        for (i, entry) in slots {
            // aalint: allow(panic-path) -- i came from enumerate over queries, relayed through the worker
            results[i] = entry;
        }
        results
    }
}

impl ChunkIndex for AppAwareIndex {
    /// Trait-level lookup without an app hint: searched across partitions.
    /// Prefer [`AppAwareIndex::lookup`] with the application type; this
    /// exists so the index can stand in where a [`ChunkIndex`] is expected.
    ///
    /// The owning partition is located with the side-effect-free
    /// [`IndexPartition::peek`] so partitions that do *not* hold the
    /// fingerprint record no lookups, misses, or disk reads and bump no
    /// refcounts; only the owner then serves the real (stat-charging,
    /// refcount-bumping) lookup.
    fn lookup(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.partitions
            .iter()
            .find(|p| p.peek(fp).is_some())
            .and_then(|p| p.lookup(fp))
    }

    fn insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool {
        // Without an app hint, file data defaults to the Other partition.
        self.insert(AppType::Other, fp, entry)
    }

    /// Trait-level release without an app hint; like [`ChunkIndex::lookup`]
    /// above, partitions that don't own the fingerprint are only peeked.
    fn release(&self, fp: &Fingerprint) -> Option<ChunkEntry> {
        self.partitions
            .iter()
            .find(|p| p.peek(fp).is_some())
            .and_then(|p| p.release(fp))
    }

    fn len(&self) -> usize {
        AppAwareIndex::len(self)
    }

    fn stats(&self) -> IndexStats {
        AppAwareIndex::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, &n.to_le_bytes())
    }

    #[test]
    fn partitions_are_independent() {
        let idx = AppAwareIndex::new(100);
        idx.insert(AppType::Doc, fp(1), ChunkEntry::new(8, 0, 0));
        // The same fingerprint is absent from every other partition.
        assert!(idx.lookup(AppType::Doc, &fp(1)).is_some());
        assert!(idx.lookup(AppType::Txt, &fp(1)).is_none());
        assert!(idx.lookup(AppType::Avi, &fp(1)).is_none());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn same_fingerprint_can_exist_per_app() {
        // Partitioning means identical content in two app types is stored
        // twice — the (negligible, per Observation 2) cost of independence.
        let idx = AppAwareIndex::new(100);
        assert!(idx.insert(AppType::Doc, fp(9), ChunkEntry::new(8, 0, 0)));
        assert!(idx.insert(AppType::Ppt, fp(9), ChunkEntry::new(8, 1, 0)));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.lookup(AppType::Doc, &fp(9)).unwrap().container, 0);
        assert_eq!(idx.lookup(AppType::Ppt, &fp(9)).unwrap().container, 1);
    }

    #[test]
    fn small_partitions_avoid_disk_where_monolithic_pays() {
        // Equal total RAM budget: 13 partitions x 100 vs one 1300-entry
        // monolithic cache, with 5000 entries spread over all apps.
        let total_ram = 1300;
        let app_aware = AppAwareIndex::new(total_ram / AppType::ALL.len());
        let monolithic = crate::MonolithicIndex::new(total_ram);
        let per_app = 90; // fits each partition's 100-entry cache

        for (ai, app) in AppType::ALL.iter().enumerate() {
            for i in 0..per_app {
                let f = fp((ai * 10_000 + i) as u64);
                app_aware.insert(*app, f, ChunkEntry::new(1, 0, 0));
                monolithic.insert(f, ChunkEntry::new(1, 0, 0));
            }
        }
        for (ai, app) in AppType::ALL.iter().enumerate() {
            for i in 0..per_app {
                let f = fp((ai * 10_000 + i) as u64);
                app_aware.lookup(*app, &f);
                ChunkIndex::lookup(&monolithic, &f);
            }
        }
        // 13*90 = 1170 entries total: each partition (90 <= 100) is fully
        // RAM-resident, while the monolithic index (1170 <= 1300) also fits
        // here — so push past the monolithic budget:
        assert_eq!(app_aware.stats().disk_reads, 0);

        let monolithic_small = crate::MonolithicIndex::new(200);
        for (ai, _) in AppType::ALL.iter().enumerate() {
            for i in 0..per_app {
                let f = fp((ai * 10_000 + i) as u64);
                monolithic_small.insert(f, ChunkEntry::new(1, 0, 0));
            }
        }
        for (ai, _) in AppType::ALL.iter().enumerate() {
            for i in 0..per_app {
                let f = fp((ai * 10_000 + i) as u64);
                ChunkIndex::lookup(&monolithic_small, &f);
            }
        }
        assert!(monolithic_small.stats().disk_reads > 0);
    }

    #[test]
    fn insert_batch_counts_new_entries_only() {
        let idx = AppAwareIndex::new(100);
        idx.insert(AppType::Doc, fp(1), ChunkEntry::new(8, 0, 0));
        let batch = [
            (AppType::Doc, fp(1), ChunkEntry::new(8, 9, 9)), // already present
            (AppType::Doc, fp(2), ChunkEntry::new(8, 1, 0)), // new
            (AppType::Txt, fp(1), ChunkEntry::new(8, 2, 0)), // new (other partition)
            (AppType::Txt, fp(1), ChunkEntry::new(8, 3, 0)), // repeat within batch
        ];
        assert_eq!(idx.insert_batch(&batch), 2);
        assert_eq!(idx.len(), 3);
        // First write wins on the in-batch repeat, as with serial inserts.
        assert_eq!(idx.lookup(AppType::Txt, &fp(1)).unwrap().container, 2);
        assert_eq!(idx.lookup(AppType::Doc, &fp(1)).unwrap().container, 0);
    }

    #[test]
    fn concurrent_shard_access_is_safe() {
        // One thread per partition, each doing the pipeline's
        // lookup→insert sequence against its own partition only.
        let idx = AppAwareIndex::new(1000);
        std::thread::scope(|scope| {
            for app in AppType::ALL {
                let idx = &idx;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let f = fp(i); // same fingerprints in every partition
                        if idx.lookup(app, &f).is_none() {
                            idx.insert(app, f, ChunkEntry::new(i, i, 0));
                        }
                    }
                });
            }
        });
        assert_eq!(idx.len(), 200 * AppType::ALL.len());
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let idx = AppAwareIndex::new(10_000);
        let apps = [AppType::Doc, AppType::Txt, AppType::Avi, AppType::Vmdk];
        let mut queries = Vec::new();
        for i in 0..400u64 {
            let app = apps[(i % 4) as usize];
            if i % 3 != 0 {
                idx.insert(app, fp(i), ChunkEntry::new(i, i, 0));
            }
            queries.push((app, fp(i)));
        }
        let parallel = idx.lookup_batch_parallel(&queries);
        for (i, (app, f)) in queries.iter().enumerate() {
            let serial = idx.lookup(*app, f);
            assert_eq!(parallel[i].map(|e| e.container), serial.map(|e| e.container), "i={i}");
        }
    }

    #[test]
    fn trait_fallback_search() {
        let idx = AppAwareIndex::new(100);
        idx.insert(AppType::Jpg, fp(5), ChunkEntry::new(3, 2, 1));
        let as_trait: &dyn ChunkIndex = &idx;
        assert!(as_trait.lookup(&fp(5)).is_some());
        assert!(as_trait.lookup(&fp(6)).is_none());
    }

    #[test]
    fn trait_fallback_does_not_pollute_other_partitions() {
        // Regression: the fallback used to run the side-effecting lookup
        // in every partition until one hit, charging lookups/misses/disk
        // reads in partitions that never owned the fingerprint — and a
        // fallback release could bump the wrong partition's refcounts.
        let idx = AppAwareIndex::new(100);
        // Same fingerprint lives in TWO partitions (allowed by design);
        // the fallback must touch only the first owner it finds.
        idx.insert(AppType::Jpg, fp(5), ChunkEntry::new(3, 2, 1));
        idx.insert(AppType::Vmdk, fp(5), ChunkEntry::new(3, 9, 9));

        let as_trait: &dyn ChunkIndex = &idx;
        assert!(as_trait.lookup(&fp(5)).is_some());
        assert!(as_trait.lookup(&fp(404)).is_none());

        // Partitions that don't own fp(5) recorded nothing at all.
        for (app, p) in idx.partitions() {
            if app == AppType::Jpg {
                continue;
            }
            let s = p.stats();
            assert_eq!(s.lookups, 0, "{app:?} charged lookups by fallback");
            assert_eq!(s.disk_reads, 0, "{app:?} charged disk reads by fallback");
            assert_eq!(s.hits, 0, "{app:?} charged hits by fallback");
        }
        // The owner's refcount was bumped exactly once (insert + 1 lookup);
        // the second copy's refcount is untouched.
        assert_eq!(idx.partition(AppType::Jpg).peek(&fp(5)).unwrap().refcount, 2);
        assert_eq!(idx.partition(AppType::Vmdk).peek(&fp(5)).unwrap().refcount, 1);

        // Fallback release decrements only the owning partition.
        assert!(as_trait.release(&fp(5)).is_none()); // 2 -> 1, not removed
        assert_eq!(idx.partition(AppType::Jpg).peek(&fp(5)).unwrap().refcount, 1);
        assert_eq!(idx.partition(AppType::Vmdk).peek(&fp(5)).unwrap().refcount, 1);
    }

    #[test]
    fn disk_backed_persist_reopen_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-appaware-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let idx = AppAwareIndex::disk_backed(4, &dir);
        for i in 0..80u64 {
            idx.insert(AppType::Doc, fp(i), ChunkEntry::new(i, i, 0));
            idx.insert(AppType::Mp3, fp(i + 1000), ChunkEntry::new(i, 0, 0));
        }
        let len = idx.len();
        idx.persist().expect("persist");
        drop(idx);
        let back = AppAwareIndex::disk_backed_reopen(4, &dir);
        assert!(back.is_disk_backed());
        assert!(back.io_error().is_none(), "{:?}", back.io_error());
        assert_eq!(back.len(), len);
        assert_eq!(back.lookup(AppType::Doc, &fp(3)).map(|e| e.container), Some(3));
        assert!(back.lookup(AppType::Mp3, &fp(1003)).is_some());
        // Partition routing survives: the key only lives in its own app.
        assert!(back.lookup(AppType::Avi, &fp(3)).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backed_index_routes_and_reports_footprint() {
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-appaware-disk-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let idx = AppAwareIndex::disk_backed(4, &dir);
        assert!(idx.is_disk_backed());
        for i in 0..64u64 {
            idx.insert(AppType::Doc, fp(i), ChunkEntry::new(i, i, 0));
        }
        for i in 0..64u64 {
            assert!(idx.lookup(AppType::Doc, &fp(i)).is_some(), "i={i}");
        }
        // Negative lookups in a partition that never saw data stay cheap.
        assert!(idx.lookup(AppType::Avi, &fp(1)).is_none());
        assert_eq!(idx.partition(AppType::Avi).stats().disk_reads, 0);

        let foot = idx.ram_footprint();
        assert_eq!(foot.cache_capacity, 4 * AppType::ALL.len());
        assert!(foot.cache_entries <= foot.cache_capacity);
        assert!(foot.segments > 0, "64 entries over a 4-entry cache must spill");
        assert!(idx.io_error().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
