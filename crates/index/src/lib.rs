#![forbid(unsafe_code)]
//! Chunk fingerprint indexes for AA-Dedupe.
//!
//! A dedup index maps each chunk fingerprint to where that chunk lives in
//! cloud storage. The paper's contribution here (§III.E, Fig. 6) is the
//! **application-aware index structure**: instead of one monolithic index
//! over every chunk, AA-Dedupe keeps one *small, independent* index per
//! application type. Because data sharing between applications is
//! negligible (Observation 2), partitioning loses essentially no
//! deduplication — while each partition is small enough to stay resident in
//! RAM, side-stepping the disk-index lookup bottleneck that throttles
//! monolithic chunk indexes (the DDFS problem), and lookups in different
//! partitions can proceed in parallel.
//!
//! * [`ChunkEntry`] — the per-chunk metadata (length, container location,
//!   reference count).
//! * [`IndexPartition`] — one index with an LRU-modelled RAM cache and
//!   RAM/disk hit accounting.
//! * [`MonolithicIndex`] — single-partition baseline (Avamar-style).
//! * [`AppAwareIndex`] — per-application partitions with parallel batch
//!   lookup (the paper's design).
//! * [`codec`] — binary snapshot format used for the paper's "periodical
//!   data synchronization" of the index into the cloud.

pub mod appaware;
pub mod codec;
pub mod filter;
pub mod lru;
pub mod monolithic;
pub mod partition;
pub mod segment;

pub use appaware::AppAwareIndex;
pub use filter::CuckooFilter;
pub use lru::LruSet;
pub use monolithic::MonolithicIndex;
pub use partition::{IndexPartition, LookupOutcome, RamFootprint};

use aadedupe_hashing::Fingerprint;

/// Where a stored chunk lives and how it is shared.
///
/// The paper (§III.E): "The metadata contains the hash information such as
/// chunk length and location."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Chunk length in bytes.
    pub len: u64,
    /// Identifier of the container object holding the chunk.
    pub container: u64,
    /// Byte offset of the chunk within the container's data section.
    pub offset: u32,
    /// Number of file recipes referencing this chunk (deletion support).
    pub refcount: u32,
}

impl ChunkEntry {
    /// New entry with a reference count of one.
    pub fn new(len: u64, container: u64, offset: u32) -> Self {
        ChunkEntry { len, container, offset, refcount: 1 }
    }
}

/// Cumulative access statistics for an index (or a partition of one).
///
/// `disk_reads` counts lookups the RAM-cache model classified as requiring
/// an on-disk index probe — the quantity the application-aware structure
/// exists to minimise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Total lookups served.
    pub lookups: u64,
    /// Lookups that found the fingerprint (duplicates detected).
    pub hits: u64,
    /// Lookups answered from the RAM cache.
    pub ram_hits: u64,
    /// Lookups that had to touch the on-disk index (modelled in resident
    /// mode, real segment reads in disk-backed mode).
    pub disk_reads: u64,
    /// Entries inserted by the query path.
    pub inserts: u64,
    /// Entries re-created by state restore ([`IndexPartition::bump_or_insert`],
    /// recovery reconciliation) rather than the query path. Kept separate
    /// from `inserts` so post-recovery stats remain comparable with a
    /// never-crashed run's query-path counts.
    pub recovered_entries: u64,
    /// Negative lookups the existence filter answered without any disk
    /// probe (disk-backed mode only).
    pub filter_hits: u64,
    /// Lookups the filter passed that then found nothing on disk — its
    /// false positives (disk-backed mode only).
    pub filter_false_positives: u64,
}

impl IndexStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &IndexStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.ram_hits += other.ram_hits;
        self.disk_reads += other.disk_reads;
        self.inserts += other.inserts;
        self.recovered_entries += other.recovered_entries;
        self.filter_hits += other.filter_hits;
        self.filter_false_positives += other.filter_false_positives;
    }
}

/// Common interface over monolithic and application-aware indexes.
///
/// Implementations use interior mutability ([`parking_lot`] locks) so that
/// lookups can proceed concurrently from several worker threads.
pub trait ChunkIndex: Send + Sync {
    /// Looks up a fingerprint; on a hit, bumps its reference count and
    /// returns the entry.
    fn lookup(&self, fp: &Fingerprint) -> Option<ChunkEntry>;

    /// Inserts a new entry. Returns `false` (leaving the original) if the
    /// fingerprint was already present.
    fn insert(&self, fp: Fingerprint, entry: ChunkEntry) -> bool;

    /// Decrements a fingerprint's reference count, removing the entry when
    /// it reaches zero. Returns the entry if it was removed.
    fn release(&self, fp: &Fingerprint) -> Option<ChunkEntry>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// True when no entries are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative access statistics.
    fn stats(&self) -> IndexStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_constructor() {
        let e = ChunkEntry::new(4096, 7, 128);
        assert_eq!(e.len, 4096);
        assert_eq!(e.container, 7);
        assert_eq!(e.offset, 128);
        assert_eq!(e.refcount, 1);
    }

    #[test]
    fn stats_merge() {
        let mut a = IndexStats {
            lookups: 1,
            hits: 2,
            ram_hits: 3,
            disk_reads: 4,
            inserts: 5,
            recovered_entries: 6,
            filter_hits: 7,
            filter_false_positives: 8,
        };
        let b = IndexStats {
            lookups: 10,
            hits: 20,
            ram_hits: 30,
            disk_reads: 40,
            inserts: 50,
            recovered_entries: 60,
            filter_hits: 70,
            filter_false_positives: 80,
        };
        a.merge(&b);
        assert_eq!(
            a,
            IndexStats {
                lookups: 11,
                hits: 22,
                ram_hits: 33,
                disk_reads: 44,
                inserts: 55,
                recovered_entries: 66,
                filter_hits: 77,
                filter_false_positives: 88,
            }
        );
    }
}
