//! A fixed-capacity LRU set used to model the RAM-resident portion of a
//! chunk index.
//!
//! Monolithic chunk indexes outgrow RAM; each lookup of a *random*
//! fingerprint then costs a disk seek — the bottleneck documented by DDFS
//! and Sparse Indexing and cited by the paper as the motivation for its
//! application-aware partitioning. [`IndexPartition`](crate::IndexPartition)
//! tracks which fingerprints would currently be RAM-resident with this LRU
//! set; misses are charged as disk reads.
//!
//! Implementation: a `HashMap` into a slab-allocated doubly-linked list —
//! O(1) touch/insert/evict, no unsafe code.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU set over `K`.
pub struct LruSet<K: Eq + Hash + Clone> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    /// Creates a set that holds at most `capacity` keys (capacity 0 is
    /// allowed and means "nothing is ever resident").
    pub fn new(capacity: usize) -> Self {
        LruSet {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// If `key` is resident, marks it most-recently-used and returns true.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.map.get(key) {
            Some(&idx) => {
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => false,
        }
    }

    /// Inserts `key` as most-recently-used, evicting the LRU key if at
    /// capacity. Returns the evicted key, if any. Inserting a resident key
    /// just touches it.
    pub fn insert(&mut self, key: K) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        if self.touch(&key) {
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            // aalint: allow(panic-path) -- tail != NIL when the map is non-empty (checked by len >= capacity with capacity >= 1)
            let old_key = self.slab[lru].key.clone();
            self.map.remove(&old_key);
            self.free.push(lru);
            Some(old_key)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                // aalint: allow(panic-path) -- free holds only indices previously minted into slab
                self.slab[i].key = key.clone();
                i
            }
            None => {
                self.slab.push(Node { key: key.clone(), prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Removes `key` if resident; returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// True if `key` is resident (without touching recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// The least-recently-used resident key, if any (without touching
    /// recency). The restore engine's bounded container cache uses this to
    /// pick the victim when it must admit a container over capacity.
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            // aalint: allow(panic-path) -- tail != NIL was checked above
            Some(&self.slab[self.tail].key)
        }
    }

    fn unlink(&mut self, idx: usize) {
        // aalint: allow(panic-path) -- idx is a live slab index: every caller passes head, tail, or a map entry
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            // aalint: allow(panic-path) -- prev != NIL was checked; NIL is never stored as a real neighbor
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            // aalint: allow(panic-path) -- next != NIL was checked
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        // aalint: allow(panic-path) -- idx is a live slab index (see unlink)
        self.slab[idx].prev = NIL;
        // aalint: allow(panic-path) -- idx is a live slab index (see unlink)
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        // aalint: allow(panic-path) -- idx is a live slab index: push_front is only called with freshly minted or unlinked entries
        self.slab[idx].prev = NIL;
        // aalint: allow(panic-path) -- idx is a live slab index (see above)
        self.slab[idx].next = self.head;
        if self.head != NIL {
            // aalint: allow(panic-path) -- head != NIL was checked
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_and_contains() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert!(lru.contains(&1) && lru.contains(&2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        // Touch 1 so 2 becomes LRU.
        assert!(lru.touch(&1));
        assert_eq!(lru.insert(3), Some(2));
        assert!(lru.contains(&1) && lru.contains(&3) && !lru.contains(&2));
    }

    #[test]
    fn reinsert_touches_instead_of_evicting() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(1), None); // already resident
        assert_eq!(lru.insert(3), Some(2)); // 2 was LRU after 1's touch
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut lru = LruSet::new(0);
        assert_eq!(lru.insert(42), None);
        assert!(!lru.contains(&42));
        assert!(lru.is_empty());
    }

    #[test]
    fn peek_lru_tracks_recency() {
        let mut lru = LruSet::new(3);
        assert_eq!(lru.peek_lru(), None);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        assert_eq!(lru.peek_lru(), Some(&1));
        lru.touch(&1);
        assert_eq!(lru.peek_lru(), Some(&2));
        lru.remove(&2);
        assert_eq!(lru.peek_lru(), Some(&3));
    }

    #[test]
    fn remove_frees_slots() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.insert(3), None); // no eviction needed
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruSet::new(1);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), Some(1));
        assert_eq!(lru.insert(3), Some(2));
        assert!(lru.contains(&3));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn long_sequence_matches_reference_model() {
        // Cross-check against a naive Vec-based LRU.
        let cap = 8;
        let mut lru = LruSet::new(cap);
        let mut reference: Vec<u64> = Vec::new(); // front = MRU
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 20;
            // Reference update.
            if let Some(pos) = reference.iter().position(|&k| k == key) {
                reference.remove(pos);
            } else if reference.len() == cap {
                reference.pop();
            }
            reference.insert(0, key);
            // LRU update.
            lru.insert(key);
            assert_eq!(lru.len(), reference.len());
            for k in &reference {
                assert!(lru.contains(k), "missing {k}");
            }
        }
    }
}
