//! On-disk index partition segments.
//!
//! When a partition's entries outgrow its RAM budget, the overflow lives
//! in *segments*: immutable, sorted fingerprint→[`ChunkEntry`] runs on
//! local disk. The design is LSM-lite — the write-back cache flushes as a
//! new segment, newer segments shadow older ones, deletions are
//! tombstones, and a bounded segment count is maintained by a streaming
//! k-way merge ([`merge_segments`]) that needs O(1) memory, which is what
//! keeps the "sub-RAM index" claim honest.
//!
//! Per segment the only RAM held is a sparse **fence index**: every
//! [`FENCE_EVERY`]-th record's fingerprint and byte offset. A point
//! lookup binary-searches the fences, seeks, and scans at most
//! `FENCE_EVERY` records — one bounded disk read.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic    "AASEG\x01"                   6 bytes
//! count    u64                           record count
//! per record (sorted strictly ascending by fingerprint):
//!   fingerprint                          1 + digest_len bytes
//!   flags    u8                          bit 0: tombstone
//!   len, container                       u64, u64
//!   offset, refcount                     u32, u32
//! checksum  u64                          FNV-1a over the record bytes
//! ```
//!
//! Files are written with the workspace's atomic-write discipline
//! (temp file + `sync_all` + rename, [`FsObjectStore`]-style), so a crash
//! never leaves a half-written segment under its final name.

use crate::ChunkEntry;
use aadedupe_hashing::Fingerprint;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic header identifying a segment file.
pub const MAGIC: &[u8; 6] = b"AASEG\x01";

/// One fence (fingerprint, byte offset) kept in RAM per this many records.
pub const FENCE_EVERY: usize = 64;

/// Byte offset where records start (magic + count).
const RECORDS_START: u64 = 14;

/// Suffix of in-flight atomic-write temp files (same discipline as
/// `FsObjectStore`); shared with the partition manifest writer.
pub(crate) const TMP_SUFFIX: &str = ".tmp-write";

/// A record: a live entry, or a tombstone shadowing an older segment's
/// entry for the same fingerprint.
pub type Record = Option<ChunkEntry>;

/// Segment encode/decode/IO failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// Missing/incorrect magic header.
    BadMagic,
    /// Input ended before the structure was complete.
    Truncated,
    /// A fingerprint failed to decode.
    BadFingerprint,
    /// A record carried flag bits this version does not define.
    BadFlags(u8),
    /// The trailing checksum did not match the record bytes.
    BadChecksum,
    /// Records were not strictly ascending by fingerprint.
    Unsorted,
    /// An underlying filesystem error (with path context).
    Io(String),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::BadMagic => write!(f, "bad segment magic"),
            SegmentError::Truncated => write!(f, "truncated segment"),
            SegmentError::BadFingerprint => write!(f, "undecodable fingerprint in segment"),
            SegmentError::BadFlags(b) => write!(f, "unknown segment record flags {b:#x}"),
            SegmentError::BadChecksum => write!(f, "segment checksum mismatch"),
            SegmentError::Unsorted => write!(f, "segment records out of order"),
            SegmentError::Io(msg) => write!(f, "segment io: {msg}"),
        }
    }
}

impl std::error::Error for SegmentError {}

fn io_err(path: &Path, what: &str, e: &io::Error) -> SegmentError {
    SegmentError::Io(format!("{what} {}: {e}", path.display()))
}

/// FNV-1a 64-bit running state.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-1a 64-bit over a whole buffer — the checksum the partition
/// manifest shares with the segment format.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.0
}

/// Serialises one record into `out`.
fn encode_record(out: &mut Vec<u8>, fp: &Fingerprint, rec: &Record) {
    fp.encode(out);
    match rec {
        Some(e) => {
            out.push(0);
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.container.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.refcount.to_le_bytes());
        }
        None => {
            // Tombstone: flags bit 0 set, zeroed payload keeps the record
            // size uniform and the encoding canonical.
            out.push(1);
            out.extend_from_slice(&[0u8; 24]);
        }
    }
}

/// Reads exactly `n` bytes, mapping EOF to [`SegmentError::Truncated`].
fn read_exact_n(r: &mut impl Read, buf: &mut [u8]) -> Result<(), SegmentError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SegmentError::Truncated
        } else {
            SegmentError::Io(format!("segment read: {e}"))
        }
    })
}

/// Reads one record from a stream. Returns the record, its raw bytes
/// appended to `raw` (for checksumming), or an error.
fn read_record(r: &mut impl Read, raw: &mut Vec<u8>) -> Result<(Fingerprint, Record), SegmentError> {
    let start = raw.len();
    let mut tag = [0u8; 1];
    read_exact_n(r, &mut tag)?;
    raw.push(tag[0]);
    let algo = aadedupe_hashing::HashAlgorithm::from_tag(tag[0])
        .ok_or(SegmentError::BadFingerprint)?;
    let dlen = algo.digest_len();
    let body_len = dlen + 1 + 8 + 8 + 4 + 4;
    raw.resize(start + 1 + body_len, 0);
    // aalint: allow(panic-path) -- raw was resized to start + 1 + body_len on the line above
    read_exact_n(r, &mut raw[start + 1..])?;
    // aalint: allow(panic-path) -- start < raw.len() after the resize above
    let buf = &raw[start..];
    // aalint: allow(panic-path) -- buf holds 1 + body_len >= 1 + dlen bytes by the resize
    let (fp, used) = Fingerprint::decode(&buf[..1 + dlen]).ok_or(SegmentError::BadFingerprint)?;
    debug_assert_eq!(used, 1 + dlen);
    // aalint: allow(panic-path) -- same resize bound; body_len > dlen
    let p = &buf[1 + dlen..];
    let flags = p[0];
    if flags > 1 {
        return Err(SegmentError::BadFlags(flags));
    }
    // Fixed-width little-endian fields; the slice bounds are exact by
    // construction, so try_into cannot fail.
    let get8 = |s: &[u8]| u64::from_le_bytes(s.try_into().unwrap_or([0u8; 8]));
    let get4 = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap_or([0u8; 4]));
    let rec = if flags & 1 == 1 {
        None
    } else {
        Some(ChunkEntry {
            len: get8(&p[1..9]),
            container: get8(&p[9..17]),
            offset: get4(&p[17..21]),
            refcount: get4(&p[21..25]),
        })
    };
    Ok((fp, rec))
}

/// Streaming segment writer over any `Write + Seek` sink. Records must be
/// pushed in strictly ascending fingerprint order; fences are collected as
/// a side product.
/// What [`SegmentEncoder::finish`] hands back: the sink, the record
/// count, the byte offset where records end, and the fence index.
type FinishedWrite<W> = (W, u64, u64, Vec<(Fingerprint, u64)>);

struct SegmentEncoder<W: Write + Seek> {
    w: W,
    fnv: Fnv,
    count: u64,
    offset: u64,
    fences: Vec<(Fingerprint, u64)>,
    last: Option<Fingerprint>,
    buf: Vec<u8>,
}

impl<W: Write + Seek> SegmentEncoder<W> {
    fn new(mut w: W) -> Result<Self, SegmentError> {
        let header_err = |e: &io::Error| SegmentError::Io(format!("segment write header: {e}"));
        w.write_all(MAGIC).map_err(|e| header_err(&e))?;
        w.write_all(&0u64.to_le_bytes()).map_err(|e| header_err(&e))?;
        Ok(SegmentEncoder {
            w,
            fnv: Fnv::new(),
            count: 0,
            offset: RECORDS_START,
            fences: Vec::new(),
            last: None,
            buf: Vec::with_capacity(64),
        })
    }

    fn push(&mut self, fp: Fingerprint, rec: &Record) -> Result<(), SegmentError> {
        if self.last.is_some_and(|l| l >= fp) {
            return Err(SegmentError::Unsorted);
        }
        self.last = Some(fp);
        if self.count.is_multiple_of(FENCE_EVERY as u64) {
            self.fences.push((fp, self.offset));
        }
        self.buf.clear();
        encode_record(&mut self.buf, &fp, rec);
        self.w
            .write_all(&self.buf)
            .map_err(|e| SegmentError::Io(format!("segment write record: {e}")))?;
        self.fnv.update(&self.buf);
        self.offset += self.buf.len() as u64;
        self.count += 1;
        Ok(())
    }

    /// Writes the checksum, patches the record count into the header, and
    /// returns `(sink, count, records_end, fences)`.
    fn finish(mut self) -> Result<FinishedWrite<W>, SegmentError> {
        let fin_err = |what: &str, e: &io::Error| SegmentError::Io(format!("{what}: {e}"));
        self.w
            .write_all(&self.fnv.0.to_le_bytes())
            .map_err(|e| fin_err("segment write checksum", &e))?;
        self.w
            .seek(SeekFrom::Start(6))
            .map_err(|e| fin_err("segment seek header", &e))?;
        self.w
            .write_all(&self.count.to_le_bytes())
            .map_err(|e| fin_err("segment patch count", &e))?;
        Ok((self.w, self.count, self.offset, self.fences))
    }
}

/// Encodes records (strictly ascending by fingerprint) into the segment
/// file format, in memory. Pure counterpart of [`Segment::write`] — the
/// two produce identical bytes, which the property suite pins.
pub fn encode_segment(records: &[(Fingerprint, Record)]) -> Result<Vec<u8>, SegmentError> {
    let mut enc = SegmentEncoder::new(io::Cursor::new(Vec::new()))?;
    for (fp, rec) in records {
        enc.push(*fp, rec)?;
    }
    let (cursor, _, _, _) = enc.finish()?;
    Ok(cursor.into_inner())
}

/// Decodes a full segment image, verifying magic, count, order, and
/// checksum. Never panics on arbitrary input.
pub fn decode_segment(buf: &[u8]) -> Result<Vec<(Fingerprint, Record)>, SegmentError> {
    if buf.len() < RECORDS_START as usize + 8 {
        return if buf.len() >= 6 && &buf[..6] != MAGIC {
            Err(SegmentError::BadMagic)
        } else {
            Err(SegmentError::Truncated)
        };
    }
    if &buf[..6] != MAGIC {
        return Err(SegmentError::BadMagic);
    }
    let count = u64::from_le_bytes(buf[6..14].try_into().map_err(|_| SegmentError::Truncated)?);
    // Each record is at least 38 bytes (12-byte digest); guard absurd
    // counts from corrupt headers before allocating.
    if count.saturating_mul(38) > buf.len() as u64 {
        return Err(SegmentError::Truncated);
    }
    // aalint: allow(panic-path) -- buf.len() >= RECORDS_START + 8 was checked at entry
    let mut r = io::Cursor::new(&buf[RECORDS_START as usize..buf.len() - 8]);
    let mut raw = Vec::new();
    let mut records = Vec::with_capacity(count as usize);
    let mut last: Option<Fingerprint> = None;
    for _ in 0..count {
        raw.clear();
        let (fp, rec) = read_record(&mut r, &mut raw)?;
        if last.is_some_and(|l| l >= fp) {
            return Err(SegmentError::Unsorted);
        }
        last = Some(fp);
        records.push((fp, rec));
    }
    if r.position() != r.get_ref().len() as u64 {
        // Trailing garbage between the last record and the checksum.
        return Err(SegmentError::Truncated);
    }
    let mut fnv = Fnv::new();
    // aalint: allow(panic-path) -- same entry-length check as the cursor construction
    fnv.update(&buf[RECORDS_START as usize..buf.len() - 8]);
    let stored =
        // aalint: allow(panic-path) -- buf.len() >= RECORDS_START + 8 >= 8 was checked at entry
        u64::from_le_bytes(buf[buf.len() - 8..].try_into().map_err(|_| SegmentError::Truncated)?);
    if fnv.0 != stored {
        return Err(SegmentError::BadChecksum);
    }
    Ok(records)
}

/// An immutable on-disk segment plus its in-RAM fence index.
pub struct Segment {
    path: PathBuf,
    file: File,
    fences: Vec<(Fingerprint, u64)>,
    count: u64,
    records_end: u64,
    seq: u64,
}

impl Segment {
    /// Writes `records` (strictly ascending by fingerprint) as segment
    /// `seq` under `dir`, atomically, and opens it for reading.
    pub fn write(
        dir: &Path,
        seq: u64,
        records: impl IntoIterator<Item = (Fingerprint, Record)>,
    ) -> Result<Segment, SegmentError> {
        let path = Self::path_for(dir, seq);
        let tmp = dir.join(format!("seg-{seq:016x}.aaseg{TMP_SUFFIX}"));
        let result = (|| {
            let f = File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
            let mut enc = SegmentEncoder::new(BufWriter::new(f))?;
            for (fp, rec) in records {
                enc.push(fp, &rec)?;
            }
            let (w, count, records_end, fences) = enc.finish()?;
            let f = w.into_inner().map_err(|e| io_err(&tmp, "flush", e.error()))?;
            f.sync_all().map_err(|e| io_err(&tmp, "sync", &e))?;
            fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", &e))?;
            let file = File::open(&path).map_err(|e| io_err(&path, "open", &e))?;
            Ok(Segment { path, file, fences, count, records_end, seq })
        })();
        if result.is_err() {
            // Best-effort cleanup so a retry starts clean; the original
            // error is what matters.
            if let Err(rm) = fs::remove_file(&tmp) {
                debug_assert!(
                    rm.kind() == io::ErrorKind::NotFound,
                    "tmp cleanup failed: {rm}"
                );
            }
        }
        result
    }

    /// The on-disk path a segment with this sequence number uses.
    pub fn path_for(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("seg-{seq:016x}.aaseg"))
    }

    /// Parses a segment sequence number back out of a file name produced
    /// by [`Segment::path_for`]. `None` for anything else (manifests,
    /// temp files, foreign files).
    pub fn seq_from_name(name: &str) -> Option<u64> {
        let hex = name.strip_prefix("seg-")?.strip_suffix(".aaseg")?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()
    }

    /// Opens an existing segment file from externally persisted metadata
    /// (a partition manifest) **without reading any of its content** —
    /// the fence index, record count, and records-end offset are taken on
    /// trust. The only IO is an open plus a size check via `stat`, so a
    /// manifest-guided partition reopen costs zero segment reads; a
    /// record later proven corrupt surfaces through the normal
    /// checksum/decode errors on first access.
    pub fn open_with_metadata(
        dir: &Path,
        seq: u64,
        count: u64,
        records_end: u64,
        fences: Vec<(Fingerprint, u64)>,
    ) -> Result<Segment, SegmentError> {
        let path = Self::path_for(dir, seq);
        let file = File::open(&path).map_err(|e| io_err(&path, "open", &e))?;
        let len = file.metadata().map_err(|e| io_err(&path, "stat", &e))?.len();
        // records + trailing checksum must fit; a shorter file means the
        // metadata describes a different (or truncated) segment.
        if len < records_end + 8 || records_end < RECORDS_START {
            return Err(SegmentError::Truncated);
        }
        Ok(Segment { path, file, fences, count, records_end, seq })
    }

    /// Opens an existing segment file by scanning it end to end: reads
    /// the header, streams every record to rebuild the fence index and
    /// records-end offset, and verifies the trailing checksum. This is
    /// the full-sweep fallback a partition reopen uses when its manifest
    /// is missing or fails its own checksum.
    pub fn open_scan(dir: &Path, seq: u64) -> Result<Segment, SegmentError> {
        let path = Self::path_for(dir, seq);
        let file = File::open(&path).map_err(|e| io_err(&path, "open", &e))?;
        let mut r = BufReader::new(&file);
        let mut header = [0u8; RECORDS_START as usize];
        read_exact_n(&mut r, &mut header)?;
        if &header[..6] != MAGIC {
            return Err(SegmentError::BadMagic);
        }
        let count = u64::from_le_bytes(
            header[6..].try_into().map_err(|_| SegmentError::Truncated)?,
        );
        let mut fnv = Fnv::new();
        let mut fences: Vec<(Fingerprint, u64)> = Vec::new();
        let mut offset = RECORDS_START;
        let mut raw = Vec::with_capacity(64);
        let mut last: Option<Fingerprint> = None;
        for i in 0..count {
            raw.clear();
            let (fp, _) = read_record(&mut r, &mut raw)?;
            if last.is_some_and(|l| l >= fp) {
                return Err(SegmentError::Unsorted);
            }
            last = Some(fp);
            if (i as usize).is_multiple_of(FENCE_EVERY) {
                fences.push((fp, offset));
            }
            fnv.update(&raw);
            offset += raw.len() as u64;
        }
        let mut stored = [0u8; 8];
        read_exact_n(&mut r, &mut stored)?;
        if u64::from_le_bytes(stored) != fnv.0 {
            return Err(SegmentError::BadChecksum);
        }
        drop(r);
        let mut file = file;
        file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&path, "seek", &e))?;
        Ok(Segment { path, file, fences, count, records_end: offset, seq })
    }

    /// The sparse fence index (every [`FENCE_EVERY`]-th fingerprint and
    /// its byte offset) — what a partition manifest persists so reopen
    /// can skip the scan that would otherwise rebuild it.
    pub fn fences(&self) -> &[(Fingerprint, u64)] {
        &self.fences
    }

    /// Byte offset where records end (the checksum follows).
    pub fn records_end(&self) -> u64 {
        self.records_end
    }

    /// Monotonic sequence number (newer segments shadow older ones).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Record count (live entries plus tombstones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// RAM held by the fence index, in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.fences.len() * (std::mem::size_of::<Fingerprint>() + std::mem::size_of::<u64>())
    }

    /// Point lookup. `Ok(None)` = fingerprint not in this segment;
    /// `Ok(Some(None))` = tombstoned here; `Ok(Some(Some(e)))` = live.
    /// Costs at most one seek plus a scan of `FENCE_EVERY` records.
    pub fn get(&mut self, fp: &Fingerprint) -> Result<Option<Record>, SegmentError> {
        let idx = self.fences.partition_point(|(f, _)| f <= fp);
        if idx == 0 {
            return Ok(None);
        }
        // aalint: allow(panic-path) -- idx > 0 was checked above; fences is non-empty when partition_point returns > 0
        let start = self.fences[idx - 1].1;
        self.file
            .seek(SeekFrom::Start(start))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        let limit = self.records_end - start;
        let mut r = BufReader::new(&mut self.file).take(limit);
        let mut raw = Vec::with_capacity(64);
        let mut consumed = 0u64;
        for _ in 0..FENCE_EVERY {
            if consumed >= limit {
                break;
            }
            raw.clear();
            let (cur, rec) = read_record(&mut r, &mut raw)?;
            consumed += raw.len() as u64;
            if cur == *fp {
                return Ok(Some(rec));
            }
            if cur > *fp {
                break;
            }
        }
        Ok(None)
    }

    /// Opens a sequential stream over all records (for merges and filter
    /// rebuilds). The checksum is verified when the stream is drained.
    pub fn stream(&mut self) -> Result<SegmentStream<'_>, SegmentError> {
        self.file
            .seek(SeekFrom::Start(RECORDS_START))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        Ok(SegmentStream {
            r: BufReader::new(&mut self.file),
            remaining: self.count,
            fnv: Fnv::new(),
            raw: Vec::with_capacity(64),
        })
    }

    /// Deletes the segment file, consuming the handle.
    pub fn remove(self) -> Result<(), SegmentError> {
        fs::remove_file(&self.path).map_err(|e| io_err(&self.path, "remove", &e))
    }
}

/// Sequential record stream over one segment.
pub struct SegmentStream<'a> {
    r: BufReader<&'a mut File>,
    remaining: u64,
    fnv: Fnv,
    raw: Vec<u8>,
}

impl SegmentStream<'_> {
    /// The next record, or `None` when the stream is drained (at which
    /// point the checksum has been verified).
    pub fn next_record(&mut self) -> Result<Option<(Fingerprint, Record)>, SegmentError> {
        if self.remaining == 0 {
            let mut stored = [0u8; 8];
            read_exact_n(&mut self.r, &mut stored)?;
            if u64::from_le_bytes(stored) != self.fnv.0 {
                return Err(SegmentError::BadChecksum);
            }
            // Mark verified so repeated calls don't re-read the checksum.
            self.fnv = Fnv::new();
            self.remaining = u64::MAX;
            return Ok(None);
        }
        if self.remaining == u64::MAX {
            return Ok(None);
        }
        self.raw.clear();
        let (fp, rec) = read_record(&mut self.r, &mut self.raw)?;
        self.fnv.update(&self.raw);
        self.remaining -= 1;
        Ok(Some((fp, rec)))
    }
}

/// Streams a k-way merge of `segments` (oldest→newest order) into a new
/// segment `seq` under `dir`, with newest-wins shadowing. When
/// `drop_tombstones` is true (full merges — nothing older remains to
/// shadow) tombstones are elided; otherwise they are carried forward.
/// Memory use is O(segments), not O(records).
pub fn merge_segments(
    dir: &Path,
    seq: u64,
    segments: &mut [Segment],
    drop_tombstones: bool,
) -> Result<Segment, SegmentError> {
    // One cursor per segment, each holding its next undelivered record.
    struct Cursor<'a> {
        stream: SegmentStream<'a>,
        head: Option<(Fingerprint, Record)>,
        age: usize, // position in `segments`: higher = newer
    }
    let mut cursors = Vec::with_capacity(segments.len());
    for (age, seg) in segments.iter_mut().enumerate() {
        let mut stream = seg.stream()?;
        let head = stream.next_record()?;
        cursors.push(Cursor { stream, head, age });
    }

    // Pull the globally-smallest fingerprint each round; among equal
    // fingerprints the newest segment wins and the others are skipped.
    let mut merged_err: Option<SegmentError> = None;
    let iter = std::iter::from_fn(|| {
        loop {
            let min_fp = cursors
                .iter()
                .filter_map(|c| c.head.as_ref().map(|(fp, _)| *fp))
                .min()?;
            let mut winner: Option<(usize, Record)> = None;
            for c in &mut cursors {
                if c.head.as_ref().is_some_and(|(fp, _)| *fp == min_fp) {
                    let (_, rec) = match c.head.take() {
                        Some(h) => h,
                        None => continue,
                    };
                    match c.stream.next_record() {
                        Ok(next) => c.head = next,
                        Err(e) => {
                            merged_err = Some(e);
                            return None;
                        }
                    }
                    if winner.as_ref().is_none_or(|(age, _)| c.age > *age) {
                        winner = Some((c.age, rec));
                    }
                }
            }
            match winner {
                Some((_, rec)) => {
                    if rec.is_none() && drop_tombstones {
                        continue; // fully merged away
                    }
                    return Some((min_fp, rec));
                }
                None => return None,
            }
        }
    });
    let merged = Segment::write(dir, seq, iter);
    match merged_err {
        Some(e) => Err(e),
        None => merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::compute(HashAlgorithm::Sha1, &n.to_le_bytes())
    }

    fn sorted_records(n: u64, tomb_every: u64) -> Vec<(Fingerprint, Record)> {
        let mut v: Vec<(Fingerprint, Record)> = (0..n)
            .map(|i| {
                let rec = if tomb_every > 0 && i % tomb_every == 0 {
                    None
                } else {
                    Some(ChunkEntry { len: i, container: i * 2, offset: i as u32, refcount: 1 })
                };
                (fp(i), rec)
            })
            .collect();
        v.sort_unstable_by_key(|(f, _)| *f);
        v
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aadedupe-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_round_trip() {
        let recs = sorted_records(500, 7);
        let bytes = encode_segment(&recs).unwrap();
        let back = decode_segment(&bytes).unwrap();
        assert_eq!(back, recs);
        // Byte stability: re-encoding the decode is identical.
        assert_eq!(encode_segment(&back).unwrap(), bytes);
    }

    #[test]
    fn encode_rejects_unsorted() {
        let mut recs = sorted_records(10, 0);
        recs.swap(0, 5);
        assert_eq!(encode_segment(&recs).err(), Some(SegmentError::Unsorted));
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = encode_segment(&sorted_records(100, 5)).unwrap();
        // Checksum catches any record-region flip.
        let mut bad = bytes.clone();
        bad[40] ^= 0x01;
        assert!(decode_segment(&bad).is_err());
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_segment(&bad).err(), Some(SegmentError::BadMagic));
        // Truncation at every length never panics.
        for n in 0..bytes.len() {
            assert!(decode_segment(&bytes[..n]).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn file_round_trip_and_point_lookups() {
        let dir = temp_dir("rt");
        let recs = sorted_records(1000, 9);
        let mut seg = Segment::write(&dir, 1, recs.iter().copied()).unwrap();
        assert_eq!(seg.count(), 1000);
        for (f, rec) in &recs {
            assert_eq!(seg.get(f).unwrap(), Some(*rec));
        }
        // Absent fingerprints come back None (not tombstone).
        assert_eq!(seg.get(&fp(999_999)).unwrap(), None);
        // File bytes match the pure encoder exactly.
        let on_disk = fs::read(Segment::path_for(&dir, 1)).unwrap();
        assert_eq!(on_disk, encode_segment(&recs).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_verifies_checksum() {
        let dir = temp_dir("stream");
        let recs = sorted_records(300, 0);
        let mut seg = Segment::write(&dir, 1, recs.iter().copied()).unwrap();
        let mut out = Vec::new();
        let mut s = seg.stream().unwrap();
        while let Some(r) = s.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, recs);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_shadows_and_drops_tombstones() {
        let dir = temp_dir("merge");
        // Old segment: fps 0..100 live.
        let old = sorted_records(100, 0);
        // New segment: tombstone evens < 20, update fp 50.
        let mut newer: Vec<(Fingerprint, Record)> = Vec::new();
        for i in (0..20u64).step_by(2) {
            newer.push((fp(i), None));
        }
        newer.push((fp(50), Some(ChunkEntry::new(5050, 7, 7))));
        newer.sort_unstable_by_key(|(f, _)| *f);
        let s1 = Segment::write(&dir, 1, old.iter().copied()).unwrap();
        let s2 = Segment::write(&dir, 2, newer.iter().copied()).unwrap();
        let mut segs = vec![s1, s2];
        let mut merged = merge_segments(&dir, 3, &mut segs, true).unwrap();
        assert_eq!(merged.count(), 90, "10 tombstoned entries elided");
        assert_eq!(merged.get(&fp(0)).unwrap(), None, "tombstone dropped entirely");
        assert_eq!(merged.get(&fp(50)).unwrap().unwrap().unwrap().len, 5050, "newest wins");
        assert_eq!(merged.get(&fp(99)).unwrap().unwrap().unwrap().len, 99);
        // Partial merge keeps tombstones.
        let merged2 = merge_segments(&dir, 4, &mut segs, false).unwrap();
        assert_eq!(merged2.count(), 100, "tombstones carried forward");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fences_stay_sparse() {
        let dir = temp_dir("fence");
        let seg = Segment::write(&dir, 1, sorted_records(6400, 0).iter().copied()).unwrap();
        assert_eq!(seg.fences.len(), 100);
        assert!(seg.mem_bytes() < 6400, "fence RAM far below one entry per record");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_scan_recovers_metadata() {
        let dir = temp_dir("openscan");
        let recs = sorted_records(1000, 9);
        let written = Segment::write(&dir, 7, recs.iter().copied()).unwrap();
        let (count, records_end, fences) =
            (written.count(), written.records_end(), written.fences().to_vec());
        drop(written);
        let mut reopened = Segment::open_scan(&dir, 7).unwrap();
        assert_eq!(reopened.count(), count);
        assert_eq!(reopened.records_end(), records_end);
        assert_eq!(reopened.fences(), fences.as_slice());
        assert_eq!(reopened.seq(), 7);
        for (f, rec) in &recs {
            assert_eq!(reopened.get(f).unwrap(), Some(*rec));
        }
        // Corruption is caught by the scan.
        let path = Segment::path_for(&dir, 7);
        let mut bytes = fs::read(&path).unwrap();
        bytes[40] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(Segment::open_scan(&dir, 7).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_with_metadata_reads_nothing() {
        let dir = temp_dir("openmeta");
        let recs = sorted_records(500, 0);
        let written = Segment::write(&dir, 3, recs.iter().copied()).unwrap();
        let (count, records_end, fences) =
            (written.count(), written.records_end(), written.fences().to_vec());
        drop(written);
        // Replace the file content with garbage of the same length: if
        // the metadata open read a single record byte it would error.
        let path = Segment::path_for(&dir, 3);
        let len = fs::metadata(&path).unwrap().len() as usize;
        fs::write(&path, vec![0xAAu8; len]).unwrap();
        let seg = Segment::open_with_metadata(&dir, 3, count, records_end, fences.clone())
            .expect("metadata open must not touch content");
        assert_eq!(seg.count(), count);
        assert_eq!(seg.fences(), fences.as_slice());
        // A too-short file is rejected by the stat check alone.
        fs::write(&path, vec![0xAAu8; (records_end as usize).saturating_sub(1)]).unwrap();
        assert!(Segment::open_with_metadata(&dir, 3, count, records_end, fences).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_round_trips_through_file_name() {
        let dir = Path::new("/x");
        let path = Segment::path_for(dir, 0xdead_beef);
        let name = path.file_name().unwrap().to_str().unwrap();
        assert_eq!(Segment::seq_from_name(name), Some(0xdead_beef));
        assert_eq!(Segment::seq_from_name("manifest.aamft"), None);
        assert_eq!(Segment::seq_from_name("seg-zz.aaseg"), None);
        assert_eq!(Segment::seq_from_name("seg-0000000000000001.aaseg.tmp-write"), None);
    }

    #[test]
    fn mixed_algorithms_round_trip() {
        let mut recs: Vec<(Fingerprint, Record)> = (0..50u64)
            .map(|i| {
                let algo = match i % 3 {
                    0 => HashAlgorithm::Rabin96,
                    1 => HashAlgorithm::Md5,
                    _ => HashAlgorithm::Sha1,
                };
                (
                    Fingerprint::compute(algo, &i.to_le_bytes()),
                    Some(ChunkEntry::new(i, i, 0)),
                )
            })
            .collect();
        recs.sort_unstable_by_key(|(f, _)| *f);
        recs.dedup_by_key(|(f, _)| *f);
        let bytes = encode_segment(&recs).unwrap();
        assert_eq!(decode_segment(&bytes).unwrap(), recs);
    }
}
