//! Binary snapshot codec for index synchronisation.
//!
//! The paper (§III.E): "a periodical data synchronization scheme is also
//! proposed in AA-Dedupe to backup the application-aware index in the cloud
//! storage to protect the data integrity of the PC backup datasets." This
//! module provides the snapshot format those syncs upload, and the decoder
//! used to rebuild a client index from the cloud after a local disk loss.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "AAIDX\x01"                    6 bytes
//! npart   u32                            partition count
//! per partition:
//!   tag     u8                           AppType tag (0 for monolithic)
//!   count   u64                          entry count
//!   per entry:
//!     fingerprint                        1 + digest_len bytes
//!     len, container                     u64, u64
//!     offset, refcount                   u32, u32
//! ```

use crate::{AppAwareIndex, ChunkEntry, MonolithicIndex};
use aadedupe_filetype::AppType;
use aadedupe_hashing::Fingerprint;
use std::fmt;

const MAGIC: &[u8; 6] = b"AAIDX\x01";

/// Snapshot decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Missing/incorrect magic header.
    BadMagic,
    /// Input ended before the structure was complete.
    Truncated,
    /// An unknown application-type tag was encountered.
    BadAppTag(u8),
    /// A fingerprint failed to decode.
    BadFingerprint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad index snapshot magic"),
            CodecError::Truncated => write!(f, "truncated index snapshot"),
            CodecError::BadAppTag(t) => write!(f, "unknown application tag {t}"),
            CodecError::BadFingerprint => write!(f, "undecodable fingerprint"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated);
        }
        // aalint: allow(panic-path) -- guarded by the buf.len() - pos < n check above
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().map_err(|_| CodecError::Truncated)?))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().map_err(|_| CodecError::Truncated)?))
    }

    fn fingerprint(&mut self) -> Result<Fingerprint, CodecError> {
        // aalint: allow(panic-path) -- pos only advances through bounds-checked take() and decode()'s consumed count
        let rest = &self.buf[self.pos..];
        let (fp, used) = Fingerprint::decode(rest).ok_or(CodecError::BadFingerprint)?;
        self.pos += used;
        Ok(fp)
    }
}

fn encode_entries(out: &mut Vec<u8>, entries: &[(Fingerprint, ChunkEntry)]) {
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (fp, e) in entries {
        fp.encode(out);
        out.extend_from_slice(&e.len.to_le_bytes());
        out.extend_from_slice(&e.container.to_le_bytes());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.refcount.to_le_bytes());
    }
}

fn decode_entries(r: &mut Reader<'_>) -> Result<Vec<(Fingerprint, ChunkEntry)>, CodecError> {
    let count = r.u64()? as usize;
    // Guard against absurd counts from corrupt headers: each entry needs at
    // least 13 + 24 bytes.
    if count.saturating_mul(13) > r.buf.len() {
        return Err(CodecError::Truncated);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let fp = r.fingerprint()?;
        let len = r.u64()?;
        let container = r.u64()?;
        let offset = r.u32()?;
        let refcount = r.u32()?;
        entries.push((fp, ChunkEntry { len, container, offset, refcount }));
    }
    Ok(entries)
}

/// Serialises an application-aware index. Partition dumps are sorted by
/// fingerprint so snapshots are byte-deterministic.
pub fn encode_app_aware(index: &AppAwareIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(AppType::ALL.len() as u32).to_le_bytes());
    for (app, partition) in index.partitions() {
        out.push(app.tag());
        let mut entries = partition.dump();
        entries.sort_by(|a, b| a.0.digest().cmp(b.0.digest()));
        encode_entries(&mut out, &entries);
    }
    out
}

/// Rebuilds an application-aware index from a snapshot.
pub fn decode_app_aware(
    buf: &[u8],
    ram_per_partition: usize,
) -> Result<AppAwareIndex, CodecError> {
    let index = AppAwareIndex::new(ram_per_partition);
    decode_app_aware_into(buf, &index)?;
    Ok(index)
}

/// Decodes a snapshot into a caller-constructed (typically empty) index —
/// the recovery path uses this so the rebuilt index keeps whatever storage
/// mode (RAM-resident or disk-backed) the engine was configured with,
/// rebuilding segments and existence filters as entries load.
pub fn decode_app_aware_into(buf: &[u8], index: &AppAwareIndex) -> Result<(), CodecError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(6)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let npart = r.u32()? as usize;
    for _ in 0..npart {
        let tag = r.u8()?;
        let app = AppType::from_tag(tag).ok_or(CodecError::BadAppTag(tag))?;
        let entries = decode_entries(&mut r)?;
        index.partition(app).load(entries);
    }
    Ok(())
}

/// Serialises a monolithic index (tag 0, one partition).
pub fn encode_monolithic(index: &MonolithicIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(0);
    let mut entries = index.partition().dump();
    entries.sort_by(|a, b| a.0.digest().cmp(b.0.digest()));
    encode_entries(&mut out, &entries);
    out
}

/// Rebuilds a monolithic index from a snapshot.
pub fn decode_monolithic(buf: &[u8], ram_capacity: usize) -> Result<MonolithicIndex, CodecError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(6)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let npart = r.u32()?;
    if npart != 1 {
        return Err(CodecError::Truncated);
    }
    let tag = r.u8()?;
    if tag != 0 {
        return Err(CodecError::BadAppTag(tag));
    }
    let index = MonolithicIndex::new(ram_capacity);
    index.partition().load(decode_entries(&mut r)?);
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkIndex;
    use aadedupe_hashing::HashAlgorithm;

    fn fp(n: u64, algo: HashAlgorithm) -> Fingerprint {
        Fingerprint::compute(algo, &n.to_le_bytes())
    }

    fn populated() -> AppAwareIndex {
        let idx = AppAwareIndex::new(1000);
        for i in 0..100u64 {
            idx.insert(AppType::Doc, fp(i, HashAlgorithm::Sha1), ChunkEntry::new(i, i, i as u32));
            idx.insert(AppType::Avi, fp(i, HashAlgorithm::Rabin96), ChunkEntry::new(i * 2, i, 0));
            idx.insert(AppType::Vmdk, fp(i, HashAlgorithm::Md5), ChunkEntry::new(i * 3, i, 9));
        }
        idx
    }

    #[test]
    fn app_aware_round_trip() {
        let idx = populated();
        let snap = encode_app_aware(&idx);
        let back = decode_app_aware(&snap, 1000).expect("decodes");
        assert_eq!(back.len(), idx.len());
        for i in 0..100u64 {
            let e = back
                .lookup(AppType::Doc, &fp(i, HashAlgorithm::Sha1))
                .expect("doc entry");
            assert_eq!(e.len, i);
            assert!(back.lookup(AppType::Avi, &fp(i, HashAlgorithm::Rabin96)).is_some());
            assert!(back.lookup(AppType::Vmdk, &fp(i, HashAlgorithm::Md5)).is_some());
            // Cross-partition isolation survives the round trip.
            assert!(back.lookup(AppType::Txt, &fp(i, HashAlgorithm::Sha1)).is_none());
        }
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = encode_app_aware(&populated());
        let b = encode_app_aware(&populated());
        assert_eq!(a, b);
    }

    #[test]
    fn monolithic_round_trip() {
        let idx = MonolithicIndex::new(100);
        for i in 0..50u64 {
            idx.insert(fp(i, HashAlgorithm::Sha1), ChunkEntry::new(i, 0, 0));
        }
        let snap = encode_monolithic(&idx);
        let back = decode_monolithic(&snap, 100).expect("decodes");
        assert_eq!(ChunkIndex::len(&back), 50);
        assert!(ChunkIndex::lookup(&back, &fp(7, HashAlgorithm::Sha1)).is_some());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut snap = encode_app_aware(&populated());
        snap[0] ^= 0xff;
        assert_eq!(decode_app_aware(&snap, 10).err(), Some(CodecError::BadMagic));
        assert_eq!(decode_app_aware(b"", 10).err(), Some(CodecError::Truncated));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let snap = encode_app_aware(&populated());
        // Any strict prefix must fail (never panic, never succeed).
        for n in (0..snap.len()).step_by(97) {
            assert!(decode_app_aware(&snap[..n], 10).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn rejects_unknown_app_tag() {
        let idx = AppAwareIndex::new(10);
        idx.insert(AppType::Avi, fp(1, HashAlgorithm::Rabin96), ChunkEntry::new(1, 0, 0));
        let mut snap = encode_app_aware(&idx);
        // First partition tag byte sits right after magic+npart.
        snap[10] = 99;
        assert_eq!(decode_app_aware(&snap, 10).err(), Some(CodecError::BadAppTag(99)));
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = AppAwareIndex::new(10);
        let back = decode_app_aware(&encode_app_aware(&idx), 10).unwrap();
        assert!(back.is_empty());
    }
}
