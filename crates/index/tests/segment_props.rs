//! Property tests for the on-disk segment codec and the existence filter.
//!
//! The segment format is what a disk-backed partition trusts across
//! process restarts, so the codec must be *total*: encode→decode→encode
//! is byte-stable, and arbitrarily truncated or corrupted input returns a
//! typed [`SegmentError`] — it never panics and never silently yields
//! wrong records. The cuckoo filter must never report a false negative
//! and keep its false-positive rate within the sizing math documented in
//! DESIGN.md.

use proptest::prelude::*;

use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::segment::{decode_segment, encode_segment, Record, SegmentError};
use aadedupe_index::{ChunkEntry, CuckooFilter};

fn fp(seed: u64, algo: HashAlgorithm) -> Fingerprint {
    Fingerprint::compute(algo, &seed.to_le_bytes())
}

/// Strategy: a sorted, strictly-ascending run of records (the only shape
/// the encoder accepts), mixing algorithms, tombstones and live entries.
fn arb_records() -> impl Strategy<Value = Vec<(Fingerprint, Record)>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            prop_oneof![
                Just(HashAlgorithm::Sha1),
                Just(HashAlgorithm::Md5),
                Just(HashAlgorithm::Rabin96),
            ],
            // (tombstone?, entry fields) — an Option strategy by hand.
            (any::<bool>(), any::<u64>(), any::<u64>(), any::<u32>(), 1u32..1000),
        ),
        0..200,
    )
    .prop_map(|raw| {
        let mut records: Vec<(Fingerprint, Record)> = raw
            .into_iter()
            .map(|(seed, algo, (live, len, container, offset, refcount))| {
                (
                    fp(seed, algo),
                    live.then_some(ChunkEntry { len, container, offset, refcount }),
                )
            })
            .collect();
        records.sort_by_key(|(fp, _)| *fp);
        records.dedup_by(|a, b| a.0 == b.0);
        records
    })
}

proptest! {
    /// encode→decode is the identity, and re-encoding the decoded records
    /// reproduces the exact bytes (byte-stable).
    #[test]
    fn roundtrip_is_byte_stable(records in arb_records()) {
        let bytes = encode_segment(&records).expect("sorted records encode");
        let decoded = decode_segment(&bytes).expect("own output decodes");
        prop_assert_eq!(&decoded, &records);
        let again = encode_segment(&decoded).expect("re-encode");
        prop_assert_eq!(again, bytes);
    }

    /// Every strict prefix fails with a typed error — never panics, never
    /// "succeeds" with fewer records.
    #[test]
    fn truncation_is_detected(records in arb_records(), cut in 0usize..4096) {
        let bytes = encode_segment(&records).expect("encode");
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(decode_segment(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    /// Any single-byte corruption either fails with a typed error or — in
    /// the one benign case, a fence-irrelevant padding-free format means
    /// there are no benign cases past the checksum — decodes to the
    /// original records. In practice the trailing FNV-1a checksum catches
    /// every record-byte flip; header flips hit BadMagic/Truncated.
    #[test]
    fn corruption_never_panics_or_lies(
        records in arb_records(),
        pos in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_segment(&records).expect("encode");
        prop_assume!(!bytes.is_empty());
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match decode_segment(&bytes) {
            // A detected failure must be one of the typed variants.
            Err(
                SegmentError::BadMagic
                | SegmentError::Truncated
                | SegmentError::BadFingerprint
                | SegmentError::BadFlags(_)
                | SegmentError::BadChecksum
                | SegmentError::Unsorted
                | SegmentError::Io(_),
            ) => {}
            // Undetected implies the decode result is still exactly right
            // (possible only if the flip cancelled out semantically —
            // with a 64-bit FNV over all record bytes this effectively
            // means the flip hit nothing load-bearing; if it ever decodes
            // it MUST match).
            Ok(decoded) => prop_assert_eq!(decoded, records, "corrupt decode differs"),
        }
    }

    /// Arbitrary garbage input never panics.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_segment(&bytes);
    }

    /// The filter never reports a false negative for inserted keys, and
    /// deletes only ever remove what was inserted.
    #[test]
    fn filter_has_no_false_negatives(keys in proptest::collection::vec(any::<u64>(), 0..500)) {
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let mut filter = CuckooFilter::with_capacity(keys.len().max(8) * 2);
        for &k in &keys {
            filter.insert(&fp(k, HashAlgorithm::Sha1)).expect("under-filled filter accepts");
        }
        for &k in &keys {
            prop_assert!(filter.contains(&fp(k, HashAlgorithm::Sha1)), "false negative for {k}");
        }
    }
}

/// Deterministic (non-proptest) FPR bound: 10k keys in a 16k-capacity
/// filter, 100k foreign probes — the false-positive rate must stay within
/// an order of magnitude of the theoretical `2 * 4 / 2^16` per probe.
#[test]
fn filter_false_positive_rate_bound() {
    let mut filter = CuckooFilter::with_capacity(16 * 1024);
    for i in 0..10_000u64 {
        filter.insert(&fp(i, HashAlgorithm::Sha1)).expect("insert");
    }
    let probes = 100_000u64;
    let mut false_positives = 0u64;
    for i in 0..probes {
        if filter.contains(&fp(10_000_000 + i, HashAlgorithm::Sha1)) {
            false_positives += 1;
        }
    }
    let rate = false_positives as f64 / probes as f64;
    assert!(rate < 2e-3, "false positive rate {rate} exceeds bound");
}
