//! Property-based tests for the index substrate: model-based checking
//! against a plain `HashMap` reference, and snapshot-codec totality.

use std::collections::HashMap;

use proptest::prelude::*;

use aadedupe_filetype::AppType;
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::{codec, AppAwareIndex, ChunkEntry, ChunkIndex, MonolithicIndex};

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u64),
    Lookup(u8),
    Release(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u8>().prop_map(Op::Lookup),
            any::<u8>().prop_map(Op::Release),
        ],
        0..200,
    )
}

fn fp(k: u8) -> Fingerprint {
    Fingerprint::compute(HashAlgorithm::Sha1, &[k])
}

proptest! {
    /// The monolithic index behaves like a refcounted HashMap.
    #[test]
    fn monolithic_matches_reference_model(ops in arb_ops()) {
        let index = MonolithicIndex::new(1 << 12);
        let mut model: HashMap<u8, (u64, u32)> = HashMap::new(); // key -> (len, refs)
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let inserted = index.insert(fp(k), ChunkEntry::new(v, 0, 0));
                    prop_assert_eq!(inserted, !model.contains_key(&k));
                    model.entry(k).or_insert((v, 1));
                }
                Op::Lookup(k) => {
                    let got = index.lookup(&fp(k));
                    match model.get_mut(&k) {
                        Some((len, refs)) => {
                            *refs += 1;
                            prop_assert_eq!(got.map(|e| e.len), Some(*len));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::Release(k) => {
                    let removed = index.release(&fp(k));
                    match model.get_mut(&k) {
                        Some((_, refs)) => {
                            *refs -= 1;
                            if *refs == 0 {
                                prop_assert!(removed.is_some());
                                model.remove(&k);
                            } else {
                                prop_assert!(removed.is_none());
                            }
                        }
                        None => prop_assert!(removed.is_none()),
                    }
                }
            }
            prop_assert_eq!(ChunkIndex::len(&index), model.len());
        }
    }

    /// Partitions are mutually invisible: operations under one app never
    /// affect lookups under another.
    #[test]
    fn app_partitions_are_isolated(
        ops in arb_ops(),
        app_a in 0usize..13,
        app_b in 0usize..13,
    ) {
        prop_assume!(app_a != app_b);
        let a = AppType::ALL[app_a];
        let b = AppType::ALL[app_b];
        let index = AppAwareIndex::new(1 << 12);
        for op in &ops {
            match op {
                Op::Insert(k, v) => { index.insert(a, fp(*k), ChunkEntry::new(*v, 0, 0)); }
                Op::Lookup(k) => { index.lookup(a, &fp(*k)); }
                Op::Release(k) => { index.release(a, &fp(*k)); }
            }
        }
        // Partition b never saw anything.
        for op in &ops {
            if let Op::Insert(k, _) = op {
                prop_assert!(index.lookup(b, &fp(*k)).is_none());
            }
        }
        prop_assert_eq!(index.partition(b).len(), 0);
    }

    /// Snapshot encode/decode is the identity on index contents, for
    /// arbitrary populations across partitions and algorithms.
    #[test]
    fn codec_round_trip(
        entries in proptest::collection::vec(
            (0usize..13, any::<u8>(), 1u64..1_000_000, any::<u32>()),
            0..100
        )
    ) {
        let index = AppAwareIndex::new(1 << 12);
        for (app_i, k, len, offset) in &entries {
            let app = AppType::ALL[*app_i];
            let algo = match app_i % 3 {
                0 => HashAlgorithm::Rabin96,
                1 => HashAlgorithm::Md5,
                _ => HashAlgorithm::Sha1,
            };
            let f = Fingerprint::compute(algo, &[*k]);
            index.insert(app, f, ChunkEntry::new(*len, 7, *offset));
        }
        let snap = codec::encode_app_aware(&index);
        let back = codec::decode_app_aware(&snap, 1 << 12).expect("decodes");
        prop_assert_eq!(back.len(), index.len());
        for (app, partition) in index.partitions() {
            for (f, e) in partition.dump() {
                let got = back.lookup(app, &f).expect("entry survives");
                prop_assert_eq!(got.len, e.len);
                prop_assert_eq!(got.container, e.container);
                prop_assert_eq!(got.offset, e.offset);
            }
        }
    }

    /// The snapshot decoder is total: arbitrary bytes never panic.
    #[test]
    fn decoder_total(garbage in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = codec::decode_app_aware(&garbage, 16);
        let _ = codec::decode_monolithic(&garbage, 16);
    }

    /// Parallel batch lookup agrees with serial lookup on arbitrary
    /// query mixes.
    #[test]
    fn parallel_batch_agrees(
        population in proptest::collection::vec((0usize..13, any::<u8>()), 0..60),
        queries in proptest::collection::vec((0usize..13, any::<u8>()), 0..60),
    ) {
        let index = AppAwareIndex::new(1 << 12);
        for (app_i, k) in &population {
            index.insert(AppType::ALL[*app_i], fp(*k), ChunkEntry::new(*k as u64 + 1, 0, 0));
        }
        let qs: Vec<(AppType, Fingerprint)> =
            queries.iter().map(|(a, k)| (AppType::ALL[*a], fp(*k))).collect();
        let parallel = index.lookup_batch_parallel(&qs);
        // Lookups bump refcounts, so compare presence/len only.
        for ((app, f), got) in qs.iter().zip(parallel) {
            let serial = index.lookup(*app, f);
            prop_assert_eq!(got.map(|e| e.len), serial.map(|e| e.len));
        }
    }
}
