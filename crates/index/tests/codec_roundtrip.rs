//! Byte-stability of the index snapshot codec.
//!
//! The parallel pipeline relies on index snapshots being a pure function
//! of index *content*: the differential suite compares cloud objects byte
//! for byte, and the periodic sync (paper §III.E) uploads these
//! snapshots. So beyond plain round-tripping, `encode(decode(encode(x)))`
//! must equal `encode(x)` exactly — for every application-type partition,
//! for empty partitions, and for entries at the extremes of their field
//! ranges.

use aadedupe_filetype::AppType;
use aadedupe_hashing::{Fingerprint, HashAlgorithm};
use aadedupe_index::codec::{
    decode_app_aware, decode_monolithic, encode_app_aware, encode_monolithic,
};
use aadedupe_index::{AppAwareIndex, ChunkEntry, MonolithicIndex};

const RAM: usize = 1024;

fn fp(seed: u64, algo: HashAlgorithm) -> Fingerprint {
    Fingerprint::compute(algo, &seed.to_le_bytes())
}

/// One entry per hash algorithm, with boundary values mixed in.
fn sample_entries(salt: u64) -> Vec<(Fingerprint, ChunkEntry)> {
    vec![
        (
            fp(salt, HashAlgorithm::Sha1),
            ChunkEntry { len: 0, container: 0, offset: 0, refcount: 1 },
        ),
        (
            fp(salt.wrapping_add(1), HashAlgorithm::Md5),
            ChunkEntry { len: 8192, container: salt, offset: 4096, refcount: 3 },
        ),
        (
            fp(salt.wrapping_add(2), HashAlgorithm::Rabin96),
            ChunkEntry {
                len: u64::MAX,
                container: u64::MAX,
                offset: u32::MAX,
                refcount: u32::MAX,
            },
        ),
    ]
}

#[test]
fn encode_decode_encode_is_byte_stable_per_partition() {
    // Populate one partition at a time so stability is proven for every
    // AppType individually while all other partitions are empty.
    for (i, &app) in AppType::ALL.iter().enumerate() {
        let index = AppAwareIndex::new(RAM);
        index.partition(app).load(sample_entries(i as u64 * 1000));
        let first = encode_app_aware(&index);
        let decoded = decode_app_aware(&first, RAM).expect("snapshot decodes");
        let second = encode_app_aware(&decoded);
        assert_eq!(first, second, "byte-unstable codec for {app:?}");
        assert_eq!(decoded.len(), index.len(), "entry count for {app:?}");
    }
}

#[test]
fn encode_decode_encode_is_byte_stable_fully_populated() {
    let index = AppAwareIndex::new(RAM);
    for (i, &app) in AppType::ALL.iter().enumerate() {
        index.partition(app).load(sample_entries(i as u64 * 1000 + 7));
    }
    let first = encode_app_aware(&index);
    let decoded = decode_app_aware(&first, RAM).expect("snapshot decodes");
    let second = encode_app_aware(&decoded);
    assert_eq!(first, second);

    // A third generation must also agree: stability is idempotent, not a
    // one-shot coincidence of the first decode.
    let third = encode_app_aware(&decode_app_aware(&second, RAM).expect("decodes again"));
    assert_eq!(second, third);
}

#[test]
fn empty_index_is_byte_stable_and_lists_every_partition() {
    let index = AppAwareIndex::new(RAM);
    let first = encode_app_aware(&index);
    let decoded = decode_app_aware(&first, RAM).expect("empty snapshot decodes");
    assert!(decoded.is_empty());
    assert_eq!(first, encode_app_aware(&decoded));
    // Header + 13 partitions, each tag (1) + count (8): empty partitions
    // are still present so decode can never mistake one app for another.
    assert_eq!(first.len(), 6 + 4 + AppType::ALL.len() * 9);
}

#[test]
fn max_size_entries_survive_exactly() {
    let index = AppAwareIndex::new(RAM);
    let extreme = ChunkEntry {
        len: u64::MAX,
        container: u64::MAX,
        offset: u32::MAX,
        refcount: u32::MAX,
    };
    let f = fp(u64::MAX, HashAlgorithm::Sha1);
    index.partition(AppType::Vmdk).load(vec![(f, extreme)]);
    let snap = encode_app_aware(&index);
    let back = decode_app_aware(&snap, RAM).expect("decodes");
    let got = back.partition(AppType::Vmdk).dump();
    assert_eq!(got, vec![(f, extreme)]);
    assert_eq!(snap, encode_app_aware(&back));
}

#[test]
fn monolithic_snapshot_is_byte_stable() {
    let index = MonolithicIndex::new(RAM);
    index.partition().load(sample_entries(99));
    let first = encode_monolithic(&index);
    let decoded = decode_monolithic(&first, RAM).expect("decodes");
    let second = encode_monolithic(&decoded);
    assert_eq!(first, second);
}

#[test]
fn stability_is_independent_of_insertion_order() {
    // The encoder sorts partition dumps by fingerprint digest, so two
    // indexes with the same content loaded in different orders must
    // produce identical snapshots — the property that makes parallel and
    // serial index-sync uploads byte-identical.
    let entries = sample_entries(4242);
    let forward = AppAwareIndex::new(RAM);
    forward.partition(AppType::Mp3).load(entries.clone());
    let backward = AppAwareIndex::new(RAM);
    let mut reversed = entries;
    reversed.reverse();
    backward.partition(AppType::Mp3).load(reversed);
    assert_eq!(encode_app_aware(&forward), encode_app_aware(&backward));
}
