#![forbid(unsafe_code)]
//! Evaluation metrics and analytic models for AA-Dedupe.
//!
//! The paper's Table II glossary, reproduced here because every symbol
//! appears in this crate's APIs:
//!
//! | Sym | Meaning              | Sym | Meaning            |
//! |-----|----------------------|-----|--------------------|
//! | DE  | Dedupe Efficiency    | SC  | Saved Capacity     |
//! | DT  | Dedupe Throughput    | DS  | Dataset Size       |
//! | NT  | Network Throughput   | DR  | Dedupe Ratio       |
//! | BWS | Backup Window Size   | SP  | Storage Price      |
//! | OP  | Operation Price      | TP  | Transfer Price     |
//! | OC  | Operation Count      | CC  | Cloud Cost         |
//!
//! * [`efficiency`] — the paper's new metric **bytes saved per second**
//!   (`DE = (1 − 1/DR)·DT`) and the pipelined backup-window model
//!   (`BWS = DS·max(1/DT, 1/(DR·NT))`).
//! * [`energy`] — power/energy model attributing consumption to CPU-bound
//!   dedup time and network-bound transfer time.
//! * [`report`] — the [`SessionReport`] record every backup scheme emits
//!   per session; the bench harness aggregates these into the paper's
//!   figures.

pub mod efficiency;
pub mod energy;
pub mod report;

pub use efficiency::{backup_window_secs, dedup_efficiency, dedup_ratio};
pub use energy::EnergyModel;
pub use report::{SessionReport, StageCpu};
