//! Deduplication-efficiency and backup-window formulas (paper §IV.B, §IV.D).

/// Dedup ratio `DR = logical / stored` (ratio of data sizes before and
/// after deduplication). Empty inputs define `DR = 1` (nothing to save);
/// a zero stored size with nonzero input is infinite reduction.
pub fn dedup_ratio(logical_bytes: u64, stored_bytes: u64) -> f64 {
    if logical_bytes == 0 {
        1.0
    } else if stored_bytes == 0 {
        f64::INFINITY
    } else {
        logical_bytes as f64 / stored_bytes as f64
    }
}

/// The paper's metric, **bytes saved per second**:
///
/// ```text
/// DE = SC/DS · DT = (1 − 1/DR) · DT
/// ```
///
/// where `DT` is dedup throughput in bytes/second. High-effectiveness but
/// slow schemes (Avamar) and fast but ineffective schemes (plain
/// incremental) both score low; AA-Dedupe's design goal is maximising this
/// quantity.
pub fn dedup_efficiency(dr: f64, dt_bytes_per_sec: f64) -> f64 {
    assert!(dr >= 1.0 || dr.is_nan(), "dedup ratio below 1: {dr}");
    if dr.is_infinite() {
        return dt_bytes_per_sec;
    }
    (1.0 - 1.0 / dr) * dt_bytes_per_sec
}

/// Pipelined backup-window model (paper §IV.D):
///
/// ```text
/// BWS = DS · max(1/DT, 1/(DR·NT))
/// ```
///
/// Deduplication and transfer overlap, so the window is bound by the slower
/// of (a) pushing `DS` bytes through the deduplicator at `DT`, and (b)
/// pushing the surviving `DS/DR` bytes over the WAN at `NT`.
pub fn backup_window_secs(ds_bytes: u64, dt_bytes_per_sec: f64, dr: f64, nt_bytes_per_sec: f64) -> f64 {
    assert!(dt_bytes_per_sec > 0.0 && nt_bytes_per_sec > 0.0);
    let dedup_time = ds_bytes as f64 / dt_bytes_per_sec;
    let transfer_time = if dr.is_infinite() {
        0.0
    } else {
        ds_bytes as f64 / (dr * nt_bytes_per_sec)
    };
    dedup_time.max(transfer_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_basics() {
        assert_eq!(dedup_ratio(100, 50), 2.0);
        assert_eq!(dedup_ratio(100, 100), 1.0);
        assert_eq!(dedup_ratio(0, 0), 1.0);
        assert!(dedup_ratio(100, 0).is_infinite());
    }

    #[test]
    fn de_formula() {
        // DR=2 at 100 MB/s saves half the bytes: 50 MB saved/s.
        assert!((dedup_efficiency(2.0, 100e6) - 50e6).abs() < 1.0);
        // DR=1 saves nothing regardless of throughput.
        assert_eq!(dedup_efficiency(1.0, 500e6), 0.0);
        // Infinite DR (everything duplicate) saves at full throughput.
        assert_eq!(dedup_efficiency(f64::INFINITY, 42.0), 42.0);
    }

    #[test]
    fn de_monotonic_in_both_factors() {
        let base = dedup_efficiency(1.5, 10e6);
        assert!(dedup_efficiency(2.0, 10e6) > base);
        assert!(dedup_efficiency(1.5, 20e6) > base);
    }

    #[test]
    fn bws_dedup_bound_vs_network_bound() {
        let ds = 1_000_000_000u64; // 1 GB
        // Slow dedup (1 MB/s), fast effective network: dedup-bound.
        let w1 = backup_window_secs(ds, 1e6, 10.0, 1e6);
        assert!((w1 - 1000.0).abs() < 1e-6);
        // Fast dedup (100 MB/s), DR=2 over a 0.5 MB/s uplink: network-bound.
        let w2 = backup_window_secs(ds, 100e6, 2.0, 0.5e6);
        assert!((w2 - 1000.0).abs() < 1e-6);
        // Higher DR shrinks a network-bound window.
        assert!(backup_window_secs(ds, 100e6, 4.0, 0.5e6) < w2);
        // ...but cannot shrink a dedup-bound one.
        assert_eq!(
            backup_window_secs(ds, 1e6, 2.0, 100e6),
            backup_window_secs(ds, 1e6, 20.0, 100e6)
        );
    }

    #[test]
    fn bws_infinite_dr_is_dedup_bound() {
        let w = backup_window_secs(1000, 10.0, f64::INFINITY, 1.0);
        assert!((w - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn de_rejects_sub_unit_dr() {
        dedup_efficiency(0.5, 1.0);
    }
}
