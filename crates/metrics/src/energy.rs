//! Energy model (paper §IV.F).
//!
//! The paper measures whole-PC power with an electricity usage monitor and
//! attributes the differences between schemes to the computational overhead
//! of chunking and fingerprinting. We reproduce that mechanism analytically
//! (DESIGN.md §5): energy is the integral of a piecewise-constant power
//! draw — a high *compute* draw while the deduplicator is busy, a lower
//! *transfer* draw while only the radio is active, over the two phases'
//! durations. Constants default to typical 2010-era laptop values.

use std::time::Duration;

/// Piecewise-constant laptop power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power draw while hashing/chunking keeps a core busy (W).
    pub compute_watts: f64,
    /// Power draw during WAN transfer with an idle CPU (W).
    pub transfer_watts: f64,
    /// Baseline idle draw, charged over the whole backup window (W).
    pub idle_watts: f64,
}

impl EnergyModel {
    /// Defaults for the paper's MacBook Pro-class laptop: ~32 W with a
    /// loaded core, ~6 W extra for active Wi-Fi transfer, 12 W idle.
    pub const fn laptop_2010() -> Self {
        EnergyModel {
            compute_watts: 32.0,
            transfer_watts: 6.0,
            idle_watts: 12.0,
        }
    }

    /// Energy (joules) for a backup session: `compute` is CPU-busy dedup
    /// time, `transfer` is WAN-active time, `window` the total backup
    /// window (compute and transfer overlap within it in the pipelined
    /// design).
    pub fn session_energy(&self, compute: Duration, transfer: Duration, window: Duration) -> f64 {
        // Idle base over the window, plus the incremental draws of the two
        // active phases (which overlap the window, not each other's cost).
        self.idle_watts * window.as_secs_f64()
            + (self.compute_watts - self.idle_watts).max(0.0) * compute.as_secs_f64()
            + self.transfer_watts * transfer.as_secs_f64()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::laptop_2010()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_heavy_schemes_cost_more() {
        let m = EnergyModel::laptop_2010();
        let window = Duration::from_secs(100);
        let transfer = Duration::from_secs(80);
        let light = m.session_energy(Duration::from_secs(10), transfer, window);
        let heavy = m.session_energy(Duration::from_secs(95), transfer, window);
        assert!(heavy > light);
        // The delta is exactly the compute premium times the extra time.
        let expect = (32.0 - 12.0) * 85.0;
        assert!((heavy - light - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_activity_costs_idle_only() {
        let m = EnergyModel::laptop_2010();
        let e = m.session_energy(Duration::ZERO, Duration::ZERO, Duration::from_secs(10));
        assert!((e - 120.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let m = EnergyModel::default();
        let e1 = m.session_energy(
            Duration::from_secs(10),
            Duration::from_secs(10),
            Duration::from_secs(10),
        );
        let e2 = m.session_energy(
            Duration::from_secs(20),
            Duration::from_secs(20),
            Duration::from_secs(20),
        );
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }
}
