//! Per-session measurement record.
//!
//! Every backup scheme emits one [`SessionReport`] per backup session; the
//! bench harness turns vectors of these into the paper's Figures 7–11.

use crate::{backup_window_secs, dedup_efficiency, dedup_ratio, EnergyModel};
use std::time::Duration;

/// Per-stage breakdown of a session's dedup CPU time, measured by the
/// observability recorder. When present, [`SessionReport::dedup_cpu`] is
/// exactly [`StageCpu::total`] — the regression test
/// `stage_cpu_parts_sum_to_dedup_cpu` in `aadedupe-core` holds both paths
/// to that identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCpu {
    /// Modelled time reading the dataset off the source disk.
    pub source_read: Duration,
    /// Measured chunk-boundary production time.
    pub chunk: Duration,
    /// Measured fingerprinting time.
    pub hash: Duration,
    /// Measured index lookup time plus the modelled on-disk probe charge.
    pub index: Duration,
}

impl StageCpu {
    /// Sum of the per-stage parts (the session's dedup CPU).
    pub fn total(&self) -> Duration {
        self.source_read + self.chunk + self.hash + self.index
    }
}

/// Measured outcome of one backup session under one scheme.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Scheme name ("AA-Dedupe", "Avamar", …).
    pub scheme: String,
    /// Session number (0-based; the paper runs 10 weekly sessions).
    pub session: usize,
    /// Logical dataset size presented to the scheme (DS), bytes.
    pub logical_bytes: u64,
    /// New unique chunk payload this session (post-dedup, pre-container),
    /// bytes.
    pub stored_bytes: u64,
    /// Bytes actually uploaded (containers incl. metadata and padding,
    /// file recipes, index snapshots).
    pub transferred_bytes: u64,
    /// Upload (PUT) requests issued.
    pub put_requests: u64,
    /// CPU time spent chunking, fingerprinting and indexing.
    pub dedup_cpu: Duration,
    /// Simulated WAN time for this session's uploads.
    pub transfer_time: Duration,
    /// Total chunks examined.
    pub chunks_total: u64,
    /// Of which detected as duplicates.
    pub chunks_duplicate: u64,
    /// Files examined.
    pub files_total: u64,
    /// Of which tiny files bypassing dedup (< the size-filter threshold).
    pub files_tiny: u64,
    /// Modelled on-disk index probes.
    pub index_disk_reads: u64,
    /// Per-stage breakdown of `dedup_cpu`, when the session ran with the
    /// observability recorder enabled (`None` otherwise).
    pub stage_cpu: Option<StageCpu>,
}

impl SessionReport {
    /// Blank report for a scheme/session (fields filled during the run).
    pub fn new(scheme: impl Into<String>, session: usize) -> Self {
        SessionReport {
            scheme: scheme.into(),
            session,
            logical_bytes: 0,
            stored_bytes: 0,
            transferred_bytes: 0,
            put_requests: 0,
            dedup_cpu: Duration::ZERO,
            transfer_time: Duration::ZERO,
            chunks_total: 0,
            chunks_duplicate: 0,
            files_total: 0,
            files_tiny: 0,
            index_disk_reads: 0,
            stage_cpu: None,
        }
    }

    /// Whether this session recorded no dedup CPU at all — the one
    /// degenerate case [`dt`](Self::dt), [`de`](Self::de) and
    /// [`bws`](Self::bws) all special-case the same way.
    fn zero_cpu(&self) -> bool {
        self.dedup_cpu.is_zero()
    }

    /// Dedup ratio DR for this session.
    pub fn dr(&self) -> f64 {
        dedup_ratio(self.logical_bytes, self.stored_bytes)
    }

    /// Dedup throughput DT (bytes/s): logical bytes over dedup CPU time.
    pub fn dt(&self) -> f64 {
        if self.zero_cpu() {
            f64::INFINITY
        } else {
            self.logical_bytes as f64 / self.dedup_cpu.as_secs_f64()
        }
    }

    /// The paper's dedup-efficiency metric DE (bytes saved per second).
    pub fn de(&self) -> f64 {
        if self.zero_cpu() {
            // Degenerate zero-CPU session: efficiency is bytes saved over
            // zero time; report saved bytes per transfer second instead of
            // infinity when transfer time exists.
            let secs = self.transfer_time.as_secs_f64();
            let saved = self.logical_bytes.saturating_sub(self.stored_bytes) as f64;
            return if secs == 0.0 { 0.0 } else { saved / secs };
        }
        dedup_efficiency(self.dr().max(1.0), self.dt())
    }

    /// Backup window (seconds) under the pipelined model with network
    /// throughput `nt_bytes_per_sec`.
    pub fn bws(&self, nt_bytes_per_sec: f64) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        if self.zero_cpu() {
            // Pure-transfer scheme: window is the transfer term alone.
            return self.logical_bytes as f64 / (self.dr().max(1.0) * nt_bytes_per_sec);
        }
        backup_window_secs(self.logical_bytes, self.dt(), self.dr().max(1.0), nt_bytes_per_sec)
    }

    /// Session energy (joules) under `model`, using the measured compute
    /// and transfer times and the modelled window.
    pub fn energy(&self, model: &EnergyModel, nt_bytes_per_sec: f64) -> f64 {
        let window = Duration::from_secs_f64(self.bws(nt_bytes_per_sec));
        model.session_energy(self.dedup_cpu, self.transfer_time, window)
    }

    /// Fraction of chunks that were duplicates.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.chunks_total == 0 {
            0.0
        } else {
            self.chunks_duplicate as f64 / self.chunks_total as f64
        }
    }

    /// CSV header matching [`SessionReport::csv_row`].
    pub const CSV_HEADER: &'static str = "scheme,session,logical_bytes,stored_bytes,transferred_bytes,put_requests,dedup_cpu_s,transfer_s,chunks_total,chunks_duplicate,files_total,files_tiny,index_disk_reads,dr,de_bytes_per_s";

    /// One CSV row for harness output.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.6},{:.6},{},{},{},{},{},{:.4},{:.1}",
            self.scheme,
            self.session,
            self.logical_bytes,
            self.stored_bytes,
            self.transferred_bytes,
            self.put_requests,
            self.dedup_cpu.as_secs_f64(),
            self.transfer_time.as_secs_f64(),
            self.chunks_total,
            self.chunks_duplicate,
            self.files_total,
            self.files_tiny,
            self.index_disk_reads,
            self.dr(),
            self.de(),
        )
    }
}

/// Sums cumulative *transferred* bytes across sessions — containers,
/// recipes and index snapshots as shipped to the cloud. This is what lands
/// in cloud storage, i.e. the Fig. 7 "cumulative cloud storage" series.
pub fn cumulative_transferred(reports: &[SessionReport]) -> Vec<u64> {
    let mut acc = 0u64;
    reports
        .iter()
        .map(|r| {
            acc += r.transferred_bytes;
            acc
        })
        .collect()
}

/// Sums cumulative *stored* bytes across sessions — unique post-dedup
/// chunk payload, before container metadata/padding and recipes. Compare
/// with [`cumulative_transferred`] to see the container/metadata overhead.
pub fn cumulative_stored(reports: &[SessionReport]) -> Vec<u64> {
    let mut acc = 0u64;
    reports
        .iter()
        .map(|r| {
            acc += r.stored_bytes;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionReport {
        SessionReport {
            scheme: "Test".into(),
            session: 1,
            logical_bytes: 1_000_000,
            stored_bytes: 250_000,
            transferred_bytes: 260_000,
            put_requests: 3,
            dedup_cpu: Duration::from_secs_f64(0.5),
            transfer_time: Duration::from_secs_f64(0.52),
            chunks_total: 120,
            chunks_duplicate: 90,
            files_total: 10,
            files_tiny: 4,
            index_disk_reads: 2,
            stage_cpu: None,
        }
    }

    #[test]
    fn derived_quantities() {
        let r = sample();
        assert!((r.dr() - 4.0).abs() < 1e-9);
        assert!((r.dt() - 2_000_000.0).abs() < 1e-6);
        // DE = (1 - 1/4) * 2 MB/s = 1.5 MB/s saved.
        assert!((r.de() - 1_500_000.0).abs() < 1e-6);
        assert!((r.duplicate_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn bws_network_bound_case() {
        let r = sample();
        // NT = 500 KB/s: transfer term = 1e6/(4*5e5) = 0.5 s; dedup term
        // also 0.5 s; window = 0.5 s.
        let w = r.bws(500_000.0);
        assert!((w - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_session_is_harmless() {
        let r = SessionReport::new("X", 0);
        assert_eq!(r.dr(), 1.0);
        assert_eq!(r.de(), 0.0);
        assert_eq!(r.bws(1e6), 0.0);
        assert_eq!(r.duplicate_fraction(), 0.0);
    }

    #[test]
    fn energy_positive_and_monotone_in_compute() {
        let m = EnergyModel::default();
        let mut a = sample();
        let e1 = a.energy(&m, 500_000.0);
        a.dedup_cpu = Duration::from_secs(5);
        let e2 = a.energy(&m, 500_000.0);
        assert!(e2 > e1 && e1 > 0.0);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = sample();
        let fields = r.csv_row().split(',').count();
        assert_eq!(fields, SessionReport::CSV_HEADER.split(',').count());
    }

    #[test]
    fn cumulative_series() {
        let mut rs = vec![sample(), sample(), sample()];
        rs[1].transferred_bytes = 100;
        rs[2].transferred_bytes = 1;
        rs[1].stored_bytes = 70;
        rs[2].stored_bytes = 9;
        assert_eq!(cumulative_transferred(&rs), vec![260_000, 260_100, 260_101]);
        assert_eq!(cumulative_stored(&rs), vec![250_000, 250_070, 250_079]);
    }

    #[test]
    fn stage_cpu_total_sums_parts() {
        let sc = StageCpu {
            source_read: Duration::from_millis(5),
            chunk: Duration::from_millis(3),
            hash: Duration::from_millis(2),
            index: Duration::from_millis(1),
        };
        assert_eq!(sc.total(), Duration::from_millis(11));
        assert_eq!(StageCpu::default().total(), Duration::ZERO);
    }
}
