//! Property-based tests for the metric formulas.

use proptest::prelude::*;

use aadedupe_metrics::{backup_window_secs, dedup_efficiency, dedup_ratio, EnergyModel};
use std::time::Duration;

proptest! {
    /// DR is ≥ 1 whenever stored ≤ logical, and scales multiplicatively.
    #[test]
    fn dr_basics(logical in 1u64..u64::MAX / 4, divisor in 1u64..1000) {
        let stored = (logical / divisor).max(1);
        let dr = dedup_ratio(logical, stored);
        prop_assert!(dr >= 1.0 - 1e-9);
        prop_assert!((dr - logical as f64 / stored as f64).abs() < 1e-6);
    }

    /// DE is monotone in both DR and DT, bounded by DT, and zero at DR=1.
    #[test]
    fn de_shape(dr in 1.0f64..1000.0, dt in 1.0f64..1e12) {
        let de = dedup_efficiency(dr, dt);
        prop_assert!(de >= 0.0);
        prop_assert!(de <= dt);
        prop_assert!(dedup_efficiency(dr + 1.0, dt) >= de);
        prop_assert!(dedup_efficiency(dr, dt * 2.0) >= de);
        prop_assert_eq!(dedup_efficiency(1.0, dt), 0.0);
    }

    /// BWS equals the max of its two terms and is monotone in DS.
    #[test]
    fn bws_shape(
        ds in 1u64..1 << 40,
        dt in 1.0f64..1e10,
        dr in 1.0f64..100.0,
        nt in 1.0f64..1e9,
    ) {
        let w = backup_window_secs(ds, dt, dr, nt);
        let dedup_term = ds as f64 / dt;
        let net_term = ds as f64 / (dr * nt);
        prop_assert!((w - dedup_term.max(net_term)).abs() <= 1e-6 * w.max(1.0));
        // Monotone in dataset size.
        prop_assert!(backup_window_secs(ds * 2, dt, dr, nt) >= w);
        // Higher DR never lengthens the window.
        prop_assert!(backup_window_secs(ds, dt, dr * 2.0, nt) <= w + 1e-9);
    }

    /// Energy is nonnegative, additive over phases, and monotone in every
    /// duration.
    #[test]
    fn energy_shape(c in 0u64..10_000, t in 0u64..10_000, w in 0u64..10_000) {
        let m = EnergyModel::laptop_2010();
        let w = w.max(c).max(t); // window covers both phases
        let e = m.session_energy(
            Duration::from_secs(c),
            Duration::from_secs(t),
            Duration::from_secs(w),
        );
        prop_assert!(e >= 0.0);
        let e_more_cpu = m.session_energy(
            Duration::from_secs(c + 10),
            Duration::from_secs(t),
            Duration::from_secs(w + 10),
        );
        prop_assert!(e_more_cpu >= e);
    }
}
