//! Property-based tests for the hash substrate.

use proptest::prelude::*;

use aadedupe_hashing::rabin::{self, gf2, RabinFingerprinter, RollingHash};
use aadedupe_hashing::{md5, rabin96, sha1, Md5, Sha1};

proptest! {
    /// Streaming (arbitrary split points) equals one-shot for MD5/SHA-1.
    #[test]
    fn streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        splits in proptest::collection::vec(0usize..20_000, 0..8),
    ) {
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();

        let mut m = Md5::new();
        let mut s = Sha1::new();
        let mut r = RabinFingerprinter::new();
        for w in cuts.windows(2) {
            m.update(&data[w[0]..w[1]]);
            s.update(&data[w[0]..w[1]]);
            r.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(m.finalize(), md5(&data));
        prop_assert_eq!(s.finalize(), sha1(&data));
        prop_assert_eq!(r.finish(), RabinFingerprinter::fingerprint(&data));
    }

    /// The rolling hash over any window position equals the direct hash of
    /// that window.
    #[test]
    fn rolling_equals_direct(
        data in proptest::collection::vec(any::<u8>(), 64..4096),
        window in 1usize..64,
    ) {
        let mut rh = RollingHash::new(window);
        for &b in &data[..window] {
            rh.push(b);
        }
        prop_assert_eq!(rh.value(), RollingHash::hash_window(&data[..window], window));
        // Check a handful of positions including the last.
        let mut positions = vec![data.len() - 1];
        positions.extend([window, window + 1, data.len() / 2].iter().copied()
            .filter(|&p| p < data.len() && p >= window));
        let mut rh2 = RollingHash::new(window);
        for &b in &data[..window] {
            rh2.push(b);
        }
        for i in window..data.len() {
            rh2.roll(data[i - window], data[i]);
            if positions.contains(&i) {
                prop_assert_eq!(
                    rh2.value(),
                    RollingHash::hash_window(&data[i + 1 - window..=i], window),
                    "position {}", i
                );
            }
        }
    }

    /// Rabin fingerprints are linear-free: appending data changes the
    /// fingerprint (no trivial extension fixed points for nonempty tails).
    #[test]
    fn rabin_sensitive_to_extension(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        tail in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let base = RabinFingerprinter::fingerprint(&data);
        let mut extended = data.clone();
        extended.extend_from_slice(&tail);
        // Equal only with probability ~2^-53; treat equality as failure.
        prop_assert_ne!(base, RabinFingerprinter::fingerprint(&extended));
    }

    /// The extended 96-bit fingerprint distinguishes mutated inputs.
    #[test]
    fn extended_fingerprint_detects_mutation(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        idx in any::<usize>(),
        delta in 1u8..=255,
    ) {
        let idx = idx % data.len();
        let mut mutated = data.clone();
        mutated[idx] ^= delta;
        prop_assert_ne!(rabin96(&data), rabin96(&mutated));
    }

    /// pmod really is a remainder: degree(pmod(a,m)) < degree(m), and the
    /// operation is idempotent.
    #[test]
    fn pmod_contract(a in any::<u64>(), m in 2u64..) {
        let r = gf2::pmod(a, m);
        prop_assert!(gf2::degree(r) < gf2::degree(m));
        prop_assert_eq!(gf2::pmod(r, m), r);
    }

    /// Carry-less modular multiplication is commutative and distributes
    /// over XOR (the GF(2) addition).
    #[test]
    fn pmulmod_ring_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = rabin::POLY_53;
        prop_assert_eq!(gf2::pmulmod(a, b, m), gf2::pmulmod(b, a, m));
        prop_assert_eq!(
            gf2::pmulmod(a, b ^ c, m),
            gf2::pmulmod(a, b, m) ^ gf2::pmulmod(a, c, m)
        );
        // Multiplying by x then dividing the exponent chain agrees with
        // xpowmod.
        prop_assert_eq!(gf2::pmulmod(gf2::xpowmod(8, m), gf2::xpowmod(16, m), m), gf2::xpowmod(24, m));
    }

    /// Digests of distinct random inputs collide with negligible
    /// probability — a smoke test that no algorithm degenerates.
    #[test]
    fn no_trivial_collisions(
        a in proptest::collection::vec(any::<u8>(), 0..512),
        b in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(md5(&a), md5(&b));
        prop_assert_ne!(sha1(&a), sha1(&b));
        prop_assert_ne!(rabin96(&a), rabin96(&b));
    }
}
