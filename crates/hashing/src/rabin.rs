//! Rabin fingerprinting over GF(2), implemented from scratch.
//!
//! A Rabin fingerprint treats a byte string as a polynomial over GF(2) and
//! reduces it modulo a fixed irreducible polynomial `P`. Two strings collide
//! only if `P` divides the XOR of their polynomials, which for random
//! irreducible `P` of degree `k` happens with probability ≈ `n/2^k` for
//! `n`-bit inputs — AA-Dedupe's justification for using it as a *weak but
//! cheap* whole-file fingerprint.
//!
//! Three facilities are provided:
//!
//! * [`RabinFingerprinter`] — one-shot/streaming 53-bit fingerprints,
//! * [`extended_fingerprint`] — the paper's *extended 12-byte (96-bit) Rabin
//!   hash* for whole-file chunking, built from two independent irreducible
//!   polynomials plus the input length,
//! * [`RollingHash`] — a fixed-window rolling hash (the paper's 48-byte
//!   window, 1-byte step) used by content-defined chunking to find chunk
//!   boundaries.
//!
//! The [`gf2`] submodule contains the polynomial arithmetic (carry-less
//! multiply, mod-reduction, irreducibility test) used both to build the
//! lookup tables and to *prove in the test suite* that the chosen moduli are
//! irreducible.

/// Default modulus: an irreducible polynomial of degree 53
/// (`x^53 + x^51 + x^49 + ... `), the same default used by several
/// production CDC implementations descended from LBFS.
pub const POLY_53: u64 = 0x3DA3358B4DC173;

/// Secondary modulus for the extended fingerprint: the primitive trinomial
/// `x^31 + x^3 + 1`.
pub const POLY_31: u64 = 0x8000_0009;

/// Second degree-31 modulus for the extended fingerprint: the primitive
/// trinomial `x^31 + x^13 + 1` (independent of [`POLY_31`]).
pub const POLY_31B: u64 = (1 << 31) | (1 << 13) | 1;

/// GF(2) polynomial arithmetic on `u64`-packed polynomials (bit `i` is the
/// coefficient of `x^i`).
pub mod gf2 {
    /// Degree of a nonzero polynomial; degree of `0` is defined as `-1`.
    pub fn degree(p: u64) -> i32 {
        63 - p.leading_zeros() as i32
    }

    /// Remainder of `a` modulo `m` (schoolbook long division).
    pub fn pmod(mut a: u64, m: u64) -> u64 {
        let dm = degree(m);
        // aalint: allow(panic-path) -- precondition on an internal GF(2) helper: a zero modulus is a construction bug upstream
        assert!(dm >= 0, "modulus must be nonzero");
        while degree(a) >= dm {
            a ^= m << (degree(a) - dm);
        }
        a
    }

    /// Carry-less product of `a` and `b`, reduced modulo `m`.
    ///
    /// Reduction is interleaved so intermediate values never overflow 64
    /// bits, which requires `degree(m) <= 57` when `b` can be a full
    /// residue. All moduli in this crate have degree ≤ 53.
    pub fn pmulmod(a: u64, b: u64, m: u64) -> u64 {
        let mut result = 0u64;
        let mut shifted = pmod(a, m);
        let mut b = b;
        while b != 0 {
            if b & 1 != 0 {
                result ^= shifted;
            }
            b >>= 1;
            shifted <<= 1;
            shifted = pmod(shifted, m);
        }
        result
    }

    /// `x^e mod m` by square-and-multiply.
    pub fn xpowmod(e: u64, m: u64) -> u64 {
        let mut result = pmod(1, m);
        let mut base = pmod(2, m); // the polynomial `x`
        let mut e = e;
        while e != 0 {
            if e & 1 != 0 {
                result = pmulmod(result, base, m);
            }
            base = pmulmod(base, base, m);
            e >>= 1;
        }
        result
    }

    /// Polynomial GCD.
    pub fn pgcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let r = pmod(a, b);
            a = b;
            b = r;
        }
        a
    }

    /// Tests irreducibility over GF(2) with the classic criterion:
    /// `f` of degree `d` is irreducible iff `x^(2^d) ≡ x (mod f)` and
    /// `gcd(x^(2^(d/q)) - x, f) = 1` for every prime divisor `q` of `d`.
    pub fn is_irreducible(f: u64) -> bool {
        let d = degree(f);
        if d <= 0 {
            return false;
        }
        let d = d as u64;
        // x^(2^d) mod f, computed by repeated squaring of x.
        let mut t = pmod(2, f);
        for _ in 0..d {
            t = pmulmod(t, t, f);
        }
        if t != pmod(2, f) {
            return false;
        }
        for q in prime_divisors(d) {
            let mut t = pmod(2, f);
            for _ in 0..(d / q) {
                t = pmulmod(t, t, f);
            }
            // gcd(x^(2^(d/q)) + x, f) must be trivial.
            if pgcd(t ^ pmod(2, f), f) != 1 {
                return false;
            }
        }
        true
    }

    fn prime_divisors(mut n: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut p = 2;
        while p * p <= n {
            if n.is_multiple_of(p) {
                out.push(p);
                while n.is_multiple_of(p) {
                    n /= p;
                }
            }
            p += 1;
        }
        if n > 1 {
            out.push(n);
        }
        out
    }
}

/// Lookup tables for byte-at-a-time reduction modulo one polynomial.
#[derive(Clone)]
struct Tables {
    degree: u32,
    /// `push[t] = (t << degree) ^ ((t << degree) mod poly)` — XORing it into
    /// a value whose top byte (bits `degree..degree+8`) equals `t` both
    /// clears those bits and adds their residue.
    push: [u64; 256],
}

impl Tables {
    fn new(poly: u64) -> Self {
        let degree = gf2::degree(poly);
        // aalint: allow(panic-path) -- construction-time parameter validation: an out-of-range modulus degree is a caller bug
        assert!((9..=56).contains(&degree), "modulus degree out of range");
        let degree = degree as u32;
        let mut push = [0u64; 256];
        for (t, entry) in push.iter_mut().enumerate() {
            let shifted = (t as u64) << degree;
            *entry = shifted ^ mod_slow(shifted, poly);
        }
        Tables { degree, push }
    }

    /// `(fp * x^8 + byte) mod poly` in two XORs.
    #[inline(always)]
    fn push_byte(&self, fp: u64, byte: u8) -> u64 {
        let top = (fp >> (self.degree - 8)) as usize & 0xff;
        // aalint: allow(panic-path) -- top is masked to 0xff and push is a full [u64; 256]
        ((fp << 8) | byte as u64) ^ self.push[top]
    }
}

fn mod_slow(a: u64, m: u64) -> u64 {
    gf2::pmod(a, m)
}

/// Slicing-by-4 tables for a degree-31 modulus: reduces a whole 32-bit
/// word per step. With `deg(P) = 31`, the intermediate `(fp << 32) | w`
/// is 63 bits, so everything fits in `u64` and the four table lookups are
/// independent loads — breaking the byte-serial dependency chain that
/// makes one-byte-at-a-time Rabin slower than MD5.
struct Tables32 {
    poly: u32,
    /// `t[k][b] = (b << (32 + 8k)) mod P`, for the k-th byte of the old
    /// fingerprint once shifted past bit 32.
    t: [[u32; 256]; 4],
}

impl Tables32 {
    fn new(poly: u64) -> Self {
        // aalint: allow(panic-path) -- construction-time validation: the 32-bit slicing tables are built only from POLY_31
        assert_eq!(gf2::degree(poly), 31, "slicing tables require a degree-31 modulus");
        let mut t = [[0u32; 256]; 4];
        for (k, table) in t.iter_mut().enumerate() {
            for (b, entry) in table.iter_mut().enumerate() {
                *entry = gf2::pmod((b as u64) << (32 + 8 * k), poly) as u32;
            }
        }
        Tables32 { poly: poly as u32, t }
    }

    /// `((fp << 32) | w) mod P` — absorbs 4 message bytes at once. `w`
    /// must hold the bytes big-endian (earlier byte = higher order) so the
    /// result equals four sequential byte pushes.
    #[inline(always)]
    fn push_word(&self, fp: u32, w: u32) -> u32 {
        // Reduce w (degree ≤ 31) by at most one step, then fold in the old
        // fingerprint's bytes via the tables.
        let w_red = w ^ (self.poly * (w >> 31));
        w_red
            // aalint: allow(panic-path) -- index masked to 0xff; t[k] is a full [u32; 256]
            ^ self.t[0][(fp & 0xff) as usize]
            // aalint: allow(panic-path) -- index masked to 0xff
            ^ self.t[1][((fp >> 8) & 0xff) as usize]
            // aalint: allow(panic-path) -- index masked to 0xff
            ^ self.t[2][((fp >> 16) & 0xff) as usize]
            // aalint: allow(panic-path) -- fp >> 24 of a u32 is < 256
            ^ self.t[3][(fp >> 24) as usize]
    }
}

/// One-shot / streaming Rabin fingerprinter.
///
/// The state is initialised to the residue of a leading `1` byte so that
/// inputs differing only in leading zero bytes fingerprint differently.
///
/// ```
/// use aadedupe_hashing::rabin::RabinFingerprinter;
/// let mut f = RabinFingerprinter::new();
/// f.update(b"hello ");
/// f.update(b"world");
/// let a = f.finish();
/// assert_eq!(a, RabinFingerprinter::fingerprint(b"hello world"));
/// assert_ne!(a, RabinFingerprinter::fingerprint(b"hello worle"));
/// ```
#[derive(Clone)]
pub struct RabinFingerprinter {
    tables: Tables,
    fp: u64,
}

impl Default for RabinFingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl RabinFingerprinter {
    /// Fingerprinter over the default degree-53 modulus [`POLY_53`].
    pub fn new() -> Self {
        Self::with_poly(POLY_53)
    }

    /// Fingerprinter over a caller-supplied irreducible modulus.
    pub fn with_poly(poly: u64) -> Self {
        let tables = Tables::new(poly);
        // Start from the residue of an implicit leading 0x01 byte so that
        // inputs differing only in leading zero bytes fingerprint
        // differently.
        RabinFingerprinter { tables, fp: 1 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut fp = self.fp;
        for &b in data {
            fp = self.tables.push_byte(fp, b);
        }
        self.fp = fp;
    }

    /// Returns the current fingerprint (residue of the absorbed message).
    pub fn finish(&self) -> u64 {
        self.fp
    }

    /// One-shot fingerprint over the default modulus.
    pub fn fingerprint(data: &[u8]) -> u64 {
        let mut f = Self::new();
        f.update(data);
        f.finish()
    }
}

/// The paper's *extended 12-byte Rabin hash* used to fingerprint whole-file
/// chunks of compressed applications.
///
/// One pass over the data computes two independent degree-31 Rabin
/// residues with slicing-by-4 tables (a 32-bit word per step, no
/// byte-serial dependency chain) plus a 32-bit multiplicative word mix
/// seeded with the length — 12 bytes total. Keeping the Rabin step
/// word-wide is what makes the weak hash decisively cheaper than MD5,
/// which is the entire point of the paper's hash selection (Fig. 3); the
/// ~94 combined bits keep accidental collision probability far below
/// hardware error rates for TB-scale personal datasets.
pub fn extended_fingerprint(data: &[u8]) -> [u8; 12] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<(Tables32, Tables32, Tables, Tables)> = OnceLock::new();
    let (ta, tb, ba, bb) = TABLES.get_or_init(|| {
        (
            Tables32::new(POLY_31),
            Tables32::new(POLY_31B),
            Tables::new(POLY_31),
            Tables::new(POLY_31B),
        )
    });

    // Implicit leading 0x01 byte (leading-zero safety) on both residues.
    let mut fa = 1u32;
    let mut fb = 1u32;
    // Word-mix auxiliary, seeded with the length so equal residues of
    // different-length inputs still yield distinct fingerprints.
    let mut aux = 0x9E3779B97F4A7C15u64 ^ (data.len() as u64);

    let mut words = data.chunks_exact(4);
    for w in &mut words {
        // Big-endian: earlier byte = higher-order polynomial coefficient,
        // matching byte-sequential pushes.
        let x = {
            let mut word = [0u8; 4];
            word.copy_from_slice(w);
            u32::from_be_bytes(word)
        };
        fa = ta.push_word(fa, x);
        fb = tb.push_word(fb, x);
        aux = (aux ^ x as u64).wrapping_mul(0xFF51AFD7ED558CCD).rotate_left(29);
    }
    for &b in words.remainder() {
        fa = ba.push_byte(fa as u64, b) as u32;
        fb = bb.push_byte(fb as u64, b) as u32;
        aux = (aux ^ b as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    }
    aux ^= aux >> 33;

    let mut out = [0u8; 12];
    out[..4].copy_from_slice(&fa.to_le_bytes());
    out[4..8].copy_from_slice(&fb.to_le_bytes());
    out[8..12].copy_from_slice(&(aux as u32).to_le_bytes());
    out
}

/// Fixed-window rolling Rabin hash: the boundary detector of content-defined
/// chunking.
///
/// The window slides one byte at a time (the paper's 48-byte window, 1-byte
/// step); [`RollingHash::roll`] updates the fingerprint in O(1) using a
/// pop-table for the byte leaving the window.
///
/// ```
/// use aadedupe_hashing::rabin::RollingHash;
/// let data = b"abcdefghijklmnopqrstuvwxyz0123456789";
/// let mut rh = RollingHash::new(8);
/// // Prime with the first window.
/// for &b in &data[..8] { rh.push(b); }
/// let direct = RollingHash::hash_window(&data[5..13], 8);
/// for i in 8..13 { rh.roll(data[i - 8], data[i]); }
/// assert_eq!(rh.value(), direct);
/// ```
#[derive(Clone)]
pub struct RollingHash {
    tables: Tables,
    /// `pop[b] = (b * x^(8*(window-1))) mod poly` — the contribution of
    /// the byte about to leave, *before* the incoming shift multiplies
    /// everything by another `x^8`.
    pop: [u64; 256],
    window: usize,
    fp: u64,
}

impl RollingHash {
    /// Rolling hash with the given window size over the default modulus.
    pub fn new(window: usize) -> Self {
        Self::with_poly(window, POLY_53)
    }

    /// Rolling hash with a caller-supplied irreducible modulus.
    pub fn with_poly(window: usize, poly: u64) -> Self {
        // aalint: allow(panic-path) -- construction-time parameter validation: a zero window is a caller bug
        assert!(window > 0, "window must be nonzero");
        let tables = Tables::new(poly);
        let xw = gf2::xpowmod(8 * (window as u64 - 1), poly);
        let mut pop = [0u64; 256];
        for (b, entry) in pop.iter_mut().enumerate() {
            *entry = gf2::pmulmod(b as u64, xw, poly);
        }
        RollingHash {
            tables,
            pop,
            window,
            fp: 0,
        }
    }

    /// Window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Appends `incoming` without expiring anything — used to prime the
    /// first window. Calling this more than `window` times without `roll`
    /// leaves stale contributions in the state.
    #[inline(always)]
    pub fn push(&mut self, incoming: u8) {
        self.fp = self.tables.push_byte(self.fp, incoming);
    }

    /// Slides the window one byte: `outgoing` leaves, `incoming` enters.
    #[inline(always)]
    pub fn roll(&mut self, outgoing: u8, incoming: u8) {
        // aalint: allow(panic-path) -- outgoing is a u8 and pop is a full [u64; 256]
        let fp = self.fp ^ self.pop[outgoing as usize];
        self.fp = self.tables.push_byte(fp, incoming);
    }

    /// Current fingerprint of the window contents.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.fp
    }

    /// Resets to the empty-window state.
    pub fn reset(&mut self) {
        self.fp = 0;
    }

    /// Non-rolling reference: the fingerprint a window-sized slice would
    /// have after being pushed byte-by-byte into a fresh state.
    pub fn hash_window(window_bytes: &[u8], window: usize) -> u64 {
        // aalint: allow(panic-path) -- reference-path precondition: callers pass a slice they sized to the window
        assert_eq!(window_bytes.len(), window);
        let mut rh = RollingHash::new(window);
        for &b in window_bytes {
            rh.push(b);
        }
        rh.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moduli_are_irreducible() {
        assert!(gf2::is_irreducible(POLY_53), "POLY_53 must be irreducible");
        assert!(gf2::is_irreducible(POLY_31), "POLY_31 must be irreducible");
        assert!(gf2::is_irreducible(POLY_31B), "POLY_31B must be irreducible");
        assert_ne!(POLY_31, POLY_31B);
        // Reducible examples must be rejected.
        assert!(!gf2::is_irreducible(0b110)); // x^2 + x = x(x+1)
        assert!(!gf2::is_irreducible(0b101)); // x^2 + 1 = (x+1)^2
        assert!(gf2::is_irreducible(0b111)); // x^2 + x + 1
        assert!(gf2::is_irreducible(0b1011)); // x^3 + x + 1
    }

    #[test]
    fn gf2_mod_basics() {
        // x^3 mod (x^2 + x + 1): x^3 = (x+1)(x^2+x+1) + 1 => remainder 1.
        assert_eq!(gf2::pmod(0b1000, 0b111), 0b1);
        assert_eq!(gf2::pmod(0, 0b111), 0);
        assert_eq!(gf2::degree(0), -1);
        assert_eq!(gf2::degree(1), 0);
        assert_eq!(gf2::degree(0b1000), 3);
    }

    #[test]
    fn xpowmod_matches_naive() {
        for e in 0..200u64 {
            let naive = {
                let mut acc = gf2::pmod(1, POLY_31);
                for _ in 0..e {
                    acc = gf2::pmulmod(acc, 2, POLY_31);
                }
                acc
            };
            assert_eq!(gf2::xpowmod(e, POLY_31), naive, "e={e}");
        }
    }

    #[test]
    fn table_push_matches_slow_mod() {
        let t = Tables::new(POLY_53);
        let mut fp = 0u64;
        let mut reference = 0u64;
        for b in [0u8, 1, 0xff, 0x80, 0x7f, 42, 0, 0, 255] {
            fp = t.push_byte(fp, b);
            reference = gf2::pmod((reference << 8) ^ b as u64, POLY_53);
            assert_eq!(fp, reference);
        }
    }

    #[test]
    fn leading_zeros_distinguished() {
        assert_ne!(
            RabinFingerprinter::fingerprint(b"\0\0abc"),
            RabinFingerprinter::fingerprint(b"abc")
        );
        assert_ne!(
            RabinFingerprinter::fingerprint(b"\0"),
            RabinFingerprinter::fingerprint(b"")
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let oneshot = RabinFingerprinter::fingerprint(&data);
        for split in [1usize, 3, 1024, 49_999] {
            let mut f = RabinFingerprinter::new();
            for piece in data.chunks(split) {
                f.update(piece);
            }
            assert_eq!(f.finish(), oneshot);
        }
    }

    #[test]
    fn rolling_matches_direct_every_offset() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let w = 48;
        let mut rh = RollingHash::new(w);
        for &b in &data[..w] {
            rh.push(b);
        }
        assert_eq!(rh.value(), RollingHash::hash_window(&data[..w], w));
        for i in w..data.len() {
            rh.roll(data[i - w], data[i]);
            assert_eq!(
                rh.value(),
                RollingHash::hash_window(&data[i + 1 - w..=i], w),
                "offset {i}"
            );
        }
    }

    #[test]
    fn slicing_word_push_equals_four_byte_pushes() {
        for poly in [POLY_31, POLY_31B] {
            let t32 = Tables32::new(poly);
            let t8 = Tables::new(poly);
            let mut r = 0x12345678u64;
            for _ in 0..2000 {
                // Pseudo-random fingerprint state and word.
                r = r.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let fp = (r >> 33) as u32 & 0x7fff_ffff;
                let w = (r & 0xffff_ffff) as u32;
                let word_wise = t32.push_word(fp, w);
                let bytes = w.to_be_bytes();
                let mut byte_wise = fp as u64;
                for &b in &bytes {
                    byte_wise = t8.push_byte(byte_wise, b);
                }
                assert_eq!(word_wise as u64, byte_wise, "poly={poly:#x} fp={fp:#x} w={w:#x}");
            }
        }
    }

    #[test]
    fn extended_fingerprint_sensitivity() {
        let a = extended_fingerprint(b"some file contents");
        let mut b = *b"some file contents";
        b[0] ^= 1;
        assert_ne!(a, extended_fingerprint(&b));
        // Length-only differences must also be visible.
        assert_ne!(extended_fingerprint(b"\0"), extended_fingerprint(b"\0\0"));
        assert_ne!(extended_fingerprint(b""), extended_fingerprint(b"\0"));
        // Deterministic.
        assert_eq!(a, extended_fingerprint(b"some file contents"));
    }

    #[test]
    fn rolling_window_sizes() {
        for w in [1usize, 2, 16, 48, 64] {
            let data: Vec<u8> = (0..200u8).collect();
            let mut rh = RollingHash::new(w);
            for &b in &data[..w] {
                rh.push(b);
            }
            for i in w..data.len() {
                rh.roll(data[i - w], data[i]);
            }
            let direct = RollingHash::hash_window(&data[data.len() - w..], w);
            assert_eq!(rh.value(), direct, "window {w}");
        }
    }

    #[test]
    fn fingerprint_residue_fits_degree() {
        for n in 0..512usize {
            let data = vec![0xa5u8; n];
            assert!(RabinFingerprinter::fingerprint(&data) < (1 << 53));
        }
    }
}
