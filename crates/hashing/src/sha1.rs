//! SHA-1 message digest (FIPS 180-1), implemented from scratch.
//!
//! AA-Dedupe uses the 20-byte SHA-1 digest as the chunk fingerprint for
//! *dynamic uncompressed* application data deduplicated with content-defined
//! chunking (CDC). Because most of CDC's computational cost is spent on
//! Rabin-window boundary detection rather than fingerprinting, the paper
//! keeps the strong hash here "with only a slight increase in overhead".

/// Streaming SHA-1 hasher.
///
/// ```
/// use aadedupe_hashing::{Sha1, to_hex};
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(to_hex(&h.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the FIPS 180-1 initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            // aalint: allow(panic-path) -- take = (64 - buf_len).min(data.len()) with buf_len < 64 invariant: both slices in bounds
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            // aalint: allow(panic-path) -- take <= data.len() by the min() above
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // After the buffered branch either the buffer was flushed
        // (buf_len == 0) or the input was fully absorbed; in the latter
        // case the remainder logic below must not clobber the buffer.
        if data.is_empty() {
            return;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        // aalint: allow(panic-path) -- chunks_exact(64) remainder is < 64 = buf.len()
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Completes the hash, returning the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Big-endian length, written directly into the final block.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                // aalint: allow(panic-path) -- i < 16, so i * 4 + 3 < 64 = block.len()
                block[i * 4],
                // aalint: allow(panic-path) -- i < 16 bound as above
                block[i * 4 + 1],
                // aalint: allow(panic-path) -- i < 16 bound as above
                block[i * 4 + 2],
                // aalint: allow(panic-path) -- i < 16 bound as above
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            // aalint: allow(panic-path) -- i ranges over 16..80 and w is [u32; 80]; i - 16 >= 0
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    fn hex_sha1(data: &[u8]) -> String {
        let mut h = Sha1::new();
        h.update(data);
        to_hex(&h.finalize())
    }

    /// FIPS 180-1 appendix A/B vectors plus well-known extras.
    #[test]
    fn fips_vectors() {
        assert_eq!(hex_sha1(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex_sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex_sha1(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex_sha1(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    /// FIPS 180-1 appendix C: one million 'a's.
    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex_sha1(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).flat_map(u32::to_le_bytes).collect();
        for split in [1usize, 13, 63, 64, 65, 255, 8192] {
            let mut h = Sha1::new();
            for piece in data.chunks(split) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), crate::sha1(&data), "split={split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        for n in 54..=130usize {
            let data = vec![0x5cu8; n];
            let d1 = crate::sha1(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len={n}");
        }
    }
}
