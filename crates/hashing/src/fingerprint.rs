//! Uniform chunk-fingerprint type.
//!
//! AA-Dedupe deliberately mixes fingerprint algorithms — 12-byte extended
//! Rabin for whole-file chunks, 16-byte MD5 for static chunks, 20-byte SHA-1
//! for content-defined chunks — so every index and container in the
//! workspace keys on this tagged union rather than a raw digest. The tag is
//! part of equality: an MD5 digest can never alias a Rabin digest even if
//! the bytes matched, which keeps the per-application index spaces disjoint.

use std::fmt;

/// Which hash family produced a [`Fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashAlgorithm {
    /// 12-byte extended Rabin fingerprint (whole-file chunks).
    Rabin96,
    /// 16-byte MD5 (static 8 KiB chunks).
    Md5,
    /// 20-byte SHA-1 (content-defined chunks).
    Sha1,
}

impl HashAlgorithm {
    /// Digest length in bytes.
    pub const fn digest_len(self) -> usize {
        match self {
            HashAlgorithm::Rabin96 => 12,
            HashAlgorithm::Md5 => 16,
            HashAlgorithm::Sha1 => 20,
        }
    }

    /// Stable single-byte tag used in on-disk/on-wire encodings.
    pub const fn tag(self) -> u8 {
        match self {
            HashAlgorithm::Rabin96 => 1,
            HashAlgorithm::Md5 => 2,
            HashAlgorithm::Sha1 => 3,
        }
    }

    /// Inverse of [`HashAlgorithm::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(HashAlgorithm::Rabin96),
            2 => Some(HashAlgorithm::Md5),
            3 => Some(HashAlgorithm::Sha1),
            _ => None,
        }
    }

    /// Human-readable name, as used in harness output.
    pub const fn name(self) -> &'static str {
        match self {
            HashAlgorithm::Rabin96 => "rabin96",
            HashAlgorithm::Md5 => "md5",
            HashAlgorithm::Sha1 => "sha1",
        }
    }
}

impl fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A chunk fingerprint: digest bytes plus the algorithm that produced them.
///
/// Stored inline (no heap allocation); the 20-byte buffer is only partially
/// used by the shorter algorithms and the unused tail is kept zeroed so that
/// derived equality/hashing are correct.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    algo: HashAlgorithm,
    bytes: [u8; 20],
}

impl Fingerprint {
    /// Wraps a 12-byte extended Rabin digest.
    pub fn rabin96(digest: [u8; 12]) -> Self {
        let mut bytes = [0u8; 20];
        bytes[..12].copy_from_slice(&digest);
        Fingerprint {
            algo: HashAlgorithm::Rabin96,
            bytes,
        }
    }

    /// Wraps a 16-byte MD5 digest.
    pub fn md5(digest: [u8; 16]) -> Self {
        let mut bytes = [0u8; 20];
        bytes[..16].copy_from_slice(&digest);
        Fingerprint {
            algo: HashAlgorithm::Md5,
            bytes,
        }
    }

    /// Wraps a 20-byte SHA-1 digest.
    pub fn sha1(digest: [u8; 20]) -> Self {
        Fingerprint {
            algo: HashAlgorithm::Sha1,
            bytes: digest,
        }
    }

    /// Fingerprints `data` with the given algorithm.
    pub fn compute(algo: HashAlgorithm, data: &[u8]) -> Self {
        match algo {
            HashAlgorithm::Rabin96 => Fingerprint::rabin96(crate::rabin96(data)),
            HashAlgorithm::Md5 => Fingerprint::md5(crate::md5(data)),
            HashAlgorithm::Sha1 => Fingerprint::sha1(crate::sha1(data)),
        }
    }

    /// The producing algorithm.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algo
    }

    /// Digest bytes (length = `self.algorithm().digest_len()`).
    pub fn digest(&self) -> &[u8] {
        // aalint: allow(panic-path) -- digest_len() <= 20 = bytes.len() for every HashAlgorithm variant
        &self.bytes[..self.algo.digest_len()]
    }

    /// First 8 digest bytes as a `u64` — a cheap bucket key for sharded
    /// index structures.
    pub fn prefix64(&self) -> u64 {
        let mut first = [0u8; 8];
        first.copy_from_slice(&self.bytes[..8]);
        u64::from_le_bytes(first)
    }

    /// Serialises to `1 + digest_len` bytes: algorithm tag then digest.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.algo.tag());
        out.extend_from_slice(self.digest());
    }

    /// Inverse of [`Fingerprint::encode`]. Returns the fingerprint and the
    /// number of bytes consumed.
    pub fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let algo = HashAlgorithm::from_tag(*input.first()?)?;
        let len = algo.digest_len();
        if input.len() < 1 + len {
            return None;
        }
        let mut bytes = [0u8; 20];
        // aalint: allow(panic-path) -- len = digest_len() <= 20, and input.len() >= 1 + len was checked above
        bytes[..len].copy_from_slice(&input[1..1 + len]);
        Some((Fingerprint { algo, bytes }, 1 + len))
    }

    /// Hexadecimal digest string.
    pub fn to_hex(&self) -> String {
        crate::to_hex(self.digest())
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.algo, self.to_hex())
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.algo, self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths() {
        assert_eq!(HashAlgorithm::Rabin96.digest_len(), 12);
        assert_eq!(HashAlgorithm::Md5.digest_len(), 16);
        assert_eq!(HashAlgorithm::Sha1.digest_len(), 20);
    }

    #[test]
    fn tag_round_trip() {
        for algo in [
            HashAlgorithm::Rabin96,
            HashAlgorithm::Md5,
            HashAlgorithm::Sha1,
        ] {
            assert_eq!(HashAlgorithm::from_tag(algo.tag()), Some(algo));
        }
        assert_eq!(HashAlgorithm::from_tag(0), None);
        assert_eq!(HashAlgorithm::from_tag(4), None);
    }

    #[test]
    fn algorithm_is_part_of_identity() {
        // Same leading bytes, different algorithms => different fingerprints.
        let data = b"identical input";
        let a = Fingerprint::compute(HashAlgorithm::Md5, data);
        let b = Fingerprint::compute(HashAlgorithm::Sha1, data);
        assert_ne!(a, b);

        let m = Fingerprint::md5([7u8; 16]);
        let mut s20 = [0u8; 20];
        s20[..16].copy_from_slice(&[7u8; 16]);
        let s = Fingerprint::sha1(s20);
        assert_ne!(m, s);
    }

    #[test]
    fn encode_decode_round_trip() {
        for algo in [
            HashAlgorithm::Rabin96,
            HashAlgorithm::Md5,
            HashAlgorithm::Sha1,
        ] {
            let fp = Fingerprint::compute(algo, b"round trip me");
            let mut buf = Vec::new();
            fp.encode(&mut buf);
            assert_eq!(buf.len(), 1 + algo.digest_len());
            let (decoded, used) = Fingerprint::decode(&buf).expect("decodes");
            assert_eq!(decoded, fp);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let fp = Fingerprint::compute(HashAlgorithm::Sha1, b"x");
        let mut buf = Vec::new();
        fp.encode(&mut buf);
        for n in 0..buf.len() {
            assert!(Fingerprint::decode(&buf[..n]).is_none(), "truncated {n}");
        }
        assert!(Fingerprint::decode(&[0xFF, 1, 2, 3]).is_none());
        assert!(Fingerprint::decode(&[]).is_none());
    }

    #[test]
    fn compute_matches_primitives() {
        let data = b"hello fingerprints";
        assert_eq!(
            Fingerprint::compute(HashAlgorithm::Md5, data).digest(),
            &crate::md5(data)
        );
        assert_eq!(
            Fingerprint::compute(HashAlgorithm::Sha1, data).digest(),
            &crate::sha1(data)
        );
        assert_eq!(
            Fingerprint::compute(HashAlgorithm::Rabin96, data).digest(),
            &crate::rabin96(data)
        );
    }

    #[test]
    fn display_formats() {
        let fp = Fingerprint::md5([0xab; 16]);
        let s = format!("{fp}");
        assert!(s.starts_with("md5:abab"));
        assert_eq!(fp.to_hex().len(), 32);
    }

    #[test]
    fn prefix64_is_stable() {
        let fp = Fingerprint::compute(HashAlgorithm::Sha1, b"prefix");
        assert_eq!(fp.prefix64(), fp.prefix64());
        let other = Fingerprint::compute(HashAlgorithm::Sha1, b"prefix2");
        assert_ne!(fp.prefix64(), other.prefix64());
    }
}
