#![forbid(unsafe_code)]
//! Hash substrate for AA-Dedupe.
//!
//! The AA-Dedupe paper (CLUSTER 2011) matches hash strength to chunk
//! granularity to minimise computational overhead (its Observation 4):
//!
//! * **Whole-file chunks** (compressed applications) are fingerprinted with
//!   an *extended 12-byte Rabin hash* — the number of whole-file chunks in a
//!   personal dataset is so small that a weak hash already has a collision
//!   probability far below the hardware error rate.
//! * **Static 8 KiB chunks** (static uncompressed applications, VM images)
//!   use a *16-byte MD5* fingerprint.
//! * **Content-defined chunks** (dynamic uncompressed applications) use a
//!   *20-byte SHA-1* fingerprint: boundary detection dominates CDC cost, so
//!   the stronger hash is nearly free.
//!
//! This crate implements all three hash families from scratch:
//!
//! * [`Md5`] — RFC 1321.
//! * [`Sha1`] — FIPS 180-1.
//! * [`rabin`] — Rabin fingerprinting over GF(2): a one-shot polynomial
//!   fingerprint ([`rabin::RabinFingerprinter`]), the 96-bit extended
//!   variant used for whole files ([`rabin::extended_fingerprint`]), and the
//!   rolling windowed hash that drives content-defined chunking
//!   ([`rabin::RollingHash`]).
//!
//! The uniform [`Fingerprint`] type carries any of the three digests plus
//! its algorithm tag, and is the key type of every chunk index in the
//! workspace.

pub mod fingerprint;
pub mod md5;
pub mod rabin;
pub mod sha1;

pub use fingerprint::{Fingerprint, HashAlgorithm};
pub use md5::Md5;
pub use sha1::Sha1;

/// Convenience: MD5 digest of a byte slice.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Convenience: SHA-1 digest of a byte slice.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Convenience: 96-bit (12-byte) extended Rabin fingerprint of a byte slice.
pub fn rabin96(data: &[u8]) -> [u8; 12] {
    rabin::extended_fingerprint(data)
}

/// Lowercase hexadecimal rendering of a digest.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        // aalint: allow(panic-path) -- a nibble is < 16 = HEX.len()
        s.push(HEX[(b >> 4) as usize] as char);
        // aalint: allow(panic-path) -- a nibble is < 16 = HEX.len()
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0x0f, 0xf0, 0xff]), "000ff0ff");
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn convenience_wrappers_match_streaming() {
        let data = b"the quick brown fox";
        let mut m = Md5::new();
        m.update(&data[..9]);
        m.update(&data[9..]);
        assert_eq!(md5(data), m.finalize());

        let mut s = Sha1::new();
        s.update(&data[..4]);
        s.update(&data[4..]);
        assert_eq!(sha1(data), s.finalize());
    }
}
