//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! AA-Dedupe uses the 16-byte MD5 digest as the chunk fingerprint for
//! *static uncompressed* application data deduplicated with static chunking
//! (SC). MD5 is no longer collision-resistant against adversaries, but the
//! paper's threat model is accidental collision in a TB-scale personal
//! dataset, where the collision probability is many orders of magnitude
//! below the hardware error rate.

/// Streaming MD5 hasher.
///
/// ```
/// use aadedupe_hashing::{Md5, to_hex};
/// let mut h = Md5::new();
/// h.update(b"abc");
/// assert_eq!(to_hex(&h.finalize()), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-round shift amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 * abs(sin(i + 1)))`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Md5 {
    /// Creates a hasher in the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            // aalint: allow(panic-path) -- take = (64 - buf_len).min(data.len()) with buf_len < 64 invariant: both slices in bounds
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            // aalint: allow(panic-path) -- take <= data.len() by the min() above
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // After the buffered branch either the buffer was flushed
        // (buf_len == 0) or the input was fully absorbed; in the latter
        // case the remainder logic below must not clobber the buffer.
        if data.is_empty() {
            return;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        // aalint: allow(panic-path) -- chunks_exact(64) remainder is < 64 = buf.len()
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Completes the hash, returning the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Write the length directly into the buffer tail and compress,
        // bypassing `update` so `len` bookkeeping doesn't matter any more.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                // aalint: allow(panic-path) -- i < 16, so i * 4 + 3 < 64 = block.len()
                block[i * 4],
                // aalint: allow(panic-path) -- i < 16 bound as above
                block[i * 4 + 1],
                // aalint: allow(panic-path) -- i < 16 bound as above
                block[i * 4 + 2],
                // aalint: allow(panic-path) -- i < 16 bound as above
                block[i * 4 + 3],
            ]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a
                .wrapping_add(f)
                // aalint: allow(panic-path) -- i < 64 and K is a full [u32; 64]
                .wrapping_add(K[i])
                // aalint: allow(panic-path) -- g < 16 by the % 16 in every arm; m is [u32; 16]
                .wrapping_add(m[g]);
            // aalint: allow(panic-path) -- i < 64 and S is a full [u32; 64]
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    fn hex_md5(data: &[u8]) -> String {
        let mut h = Md5::new();
        h.update(data);
        to_hex(&h.finalize())
    }

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        assert_eq!(hex_md5(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex_md5(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex_md5(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(hex_md5(b"message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            hex_md5(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex_md5(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hex_md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(100_000).collect();
        // Feed in irregular pieces crossing every block boundary pattern.
        for split in [1usize, 7, 63, 64, 65, 127, 4096] {
            let mut h = Md5::new();
            for piece in data.chunks(split) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), crate::md5(&data), "split={split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of lengths 54..=130 cross the one-vs-two padding-block
        // boundary (55/56) and the block boundary (64).
        for n in 54..=130usize {
            let data = vec![0xabu8; n];
            let d1 = crate::md5(&data);
            let mut h = Md5::new();
            h.update(&data[..n / 2]);
            h.update(&data[n / 2..]);
            assert_eq!(h.finalize(), d1, "len={n}");
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex_md5(&data), "7707d6ae4e027c70eea2a935c2296f21");
    }
}
