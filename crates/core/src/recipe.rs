//! File recipes and session manifests.
//!
//! After dedup, a file is represented by its *recipe*: the ordered list of
//! chunk references (fingerprint, length, container placement) that
//! reconstruct it. A session's recipes are bundled into a *manifest*,
//! uploaded alongside the containers; restore needs nothing else.
//!
//! Binary layout (little-endian):
//!
//! ```text
//! magic     "AAMAN\x01"
//! session   u64
//! nfiles    u64
//! per file:
//!   path_len u16, path bytes (UTF-8)
//!   app tag  u8
//!   flags    u8   (bit 0: tiny file)
//!   nchunks  u32
//!   per chunk:
//!     fingerprint           1 + digest_len
//!     len u32, container u64, offset u32
//! ```

use aadedupe_filetype::AppType;
use aadedupe_hashing::Fingerprint;

use crate::scheme::BackupError;

const MAGIC: &[u8; 6] = b"AAMAN\x01";

/// A reference to one stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Chunk fingerprint (verifies restored bytes).
    pub fingerprint: Fingerprint,
    /// Chunk length in bytes.
    pub len: u32,
    /// Container object holding the chunk.
    pub container: u64,
    /// Offset within the container's data section.
    pub offset: u32,
}

/// One file's reconstruction recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecipe {
    /// File path.
    pub path: String,
    /// Application type.
    pub app: AppType,
    /// Whether the file was handled by the tiny-file path.
    pub tiny: bool,
    /// Ordered chunk references.
    pub chunks: Vec<ChunkRef>,
}

impl FileRecipe {
    /// Logical file size (sum of chunk lengths).
    pub fn file_len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len as u64).sum()
    }
}

/// All recipes of one backup session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Session number.
    pub session: u64,
    /// Per-file recipes, in backup order.
    pub files: Vec<FileRecipe>,
}

impl Manifest {
    /// Empty manifest for a session.
    pub fn new(session: u64) -> Self {
        Manifest { session, files: Vec::new() }
    }

    /// Total logical bytes described.
    pub fn logical_bytes(&self) -> u64 {
        self.files.iter().map(FileRecipe::file_len).sum()
    }

    /// Serialises the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&(self.files.len() as u64).to_le_bytes());
        for f in &self.files {
            let path = f.path.as_bytes();
            // aalint: allow(panic-path) -- the format caps the path field at u16; a 64 KiB path is a generator bug worth a loud panic
            assert!(path.len() <= u16::MAX as usize, "path too long");
            out.extend_from_slice(&(path.len() as u16).to_le_bytes());
            out.extend_from_slice(path);
            out.push(f.app.tag());
            out.push(u8::from(f.tiny));
            out.extend_from_slice(&(f.chunks.len() as u32).to_le_bytes());
            for c in &f.chunks {
                c.fingerprint.encode(&mut out);
                out.extend_from_slice(&c.len.to_le_bytes());
                out.extend_from_slice(&c.container.to_le_bytes());
                out.extend_from_slice(&c.offset.to_le_bytes());
            }
        }
        out
    }

    /// Parses a manifest, failing on any structural damage.
    pub fn decode(buf: &[u8]) -> Result<Self, BackupError> {
        let corrupt = |what: &str| BackupError::Corrupt(format!("manifest: {what}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], BackupError> {
            if buf.len() - *pos < n {
                return Err(BackupError::Corrupt("manifest: truncated".into()));
            }
            // aalint: allow(panic-path) -- guarded by the buf.len() - pos < n check above
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 6)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let session = u64::from_le_bytes(take(&mut pos, 8)?.try_into().map_err(|_| corrupt("short field"))?);
        let nfiles = u64::from_le_bytes(take(&mut pos, 8)?.try_into().map_err(|_| corrupt("short field"))?) as usize;
        if nfiles.saturating_mul(8) > buf.len() {
            return Err(corrupt("absurd file count"));
        }
        let mut files = Vec::with_capacity(nfiles);
        for _ in 0..nfiles {
            let plen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().map_err(|_| corrupt("short field"))?) as usize;
            let path = String::from_utf8(take(&mut pos, plen)?.to_vec())
                .map_err(|_| corrupt("non-UTF-8 path"))?;
            let tag = take(&mut pos, 1)?[0];
            let app = AppType::from_tag(tag).ok_or_else(|| corrupt("bad app tag"))?;
            let flags = take(&mut pos, 1)?[0];
            let nchunks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().map_err(|_| corrupt("short field"))?) as usize;
            if nchunks.saturating_mul(13) > buf.len() {
                return Err(corrupt("absurd chunk count"));
            }
            let mut chunks = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                // aalint: allow(panic-path) -- pos only advances through bounds-checked take() and decode()'s consumed count
                let (fingerprint, used) = Fingerprint::decode(&buf[pos..])
                    .ok_or_else(|| corrupt("bad fingerprint"))?;
                pos += used;
                let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().map_err(|_| corrupt("short field"))?);
                let container = u64::from_le_bytes(take(&mut pos, 8)?.try_into().map_err(|_| corrupt("short field"))?);
                let offset = u32::from_le_bytes(take(&mut pos, 4)?.try_into().map_err(|_| corrupt("short field"))?);
                chunks.push(ChunkRef { fingerprint, len, container, offset });
            }
            files.push(FileRecipe { path, app, tiny: flags & 1 != 0, chunks });
        }
        Ok(Manifest { session, files })
    }

    /// The cloud object key for a scheme's session manifest.
    pub fn key(scheme: &str, session: u64) -> String {
        format!("{scheme}/manifests/{session:08}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_hashing::HashAlgorithm;

    fn sample() -> Manifest {
        let fp = |d: &[u8], a| Fingerprint::compute(a, d);
        Manifest {
            session: 3,
            files: vec![
                FileRecipe {
                    path: "user/doc/a.doc".into(),
                    app: AppType::Doc,
                    tiny: false,
                    chunks: vec![
                        ChunkRef {
                            fingerprint: fp(b"c1", HashAlgorithm::Sha1),
                            len: 4096,
                            container: 7,
                            offset: 0,
                        },
                        ChunkRef {
                            fingerprint: fp(b"c2", HashAlgorithm::Sha1),
                            len: 2048,
                            container: 7,
                            offset: 4096,
                        },
                    ],
                },
                FileRecipe {
                    path: "user/tiny/n.txt".into(),
                    app: AppType::Txt,
                    tiny: true,
                    chunks: vec![ChunkRef {
                        fingerprint: fp(b"tiny", HashAlgorithm::Sha1),
                        len: 100,
                        container: 8,
                        offset: 12,
                    }],
                },
                FileRecipe {
                    path: "user/avi/empty.avi".into(),
                    app: AppType::Avi,
                    tiny: false,
                    chunks: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.logical_bytes(), 4096 + 2048 + 100);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..n]).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn corrupt_app_tag_rejected() {
        let mut bytes = sample().encode();
        // First file's app tag sits after magic(6)+session(8)+nfiles(8)+
        // path_len(2)+path(14).
        let tag_pos = 6 + 8 + 8 + 2 + "user/doc/a.doc".len();
        bytes[tag_pos] = 250;
        assert!(matches!(Manifest::decode(&bytes), Err(BackupError::Corrupt(_))));
    }

    #[test]
    fn empty_manifest() {
        let m = Manifest::new(9);
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back.session, 9);
        assert!(back.files.is_empty());
        assert_eq!(back.logical_bytes(), 0);
    }

    #[test]
    fn keys_are_ordered_by_session() {
        let a = Manifest::key("aa-dedupe", 2);
        let b = Manifest::key("aa-dedupe", 10);
        assert!(a < b, "zero-padded keys sort numerically");
    }
}
