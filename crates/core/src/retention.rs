//! Retention policies: which sessions to keep, and pruning the rest.
//!
//! A retention policy is a pure function from the set of existing session
//! numbers to the subset that must survive. Applying one deletes every
//! other session through the ordinary [`delete_session`] protocol, which
//! makes retention the *deletion-pressure generator* for the
//! [vacuum](crate::vacuum) pass: pruning marks chunks dead inside shared
//! containers, and the subsequent vacuum reclaims the space.
//!
//! Policies are expressed in **session numbers**, never wall-clock time —
//! the engine's determinism contract forbids reading the clock, and the
//! workload model already equates one session with one backup period. For
//! the GFS (grandfather-father-son) policy, a session is a "day", seven
//! sessions a "week" and thirty a "month".
//!
//! [`delete_session`]: crate::AaDedupe::delete_session

use std::collections::BTreeSet;

use crate::engine::AaDedupe;
use crate::scheme::BackupError;

/// Which backup sessions a pruning pass must preserve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Keep the newest `n` sessions.
    KeepLast(usize),
    /// Grandfather-father-son: keep the newest session of each of the
    /// last `daily` days, the last `weekly` weeks (7 sessions each) and
    /// the last `monthly` months (30 sessions each), measured backwards
    /// from the newest session.
    Gfs {
        /// Daily generations to keep.
        daily: usize,
        /// Weekly generations to keep.
        weekly: usize,
        /// Monthly generations to keep.
        monthly: usize,
    },
}

impl RetentionPolicy {
    /// The sessions this policy retains out of `sessions`. Pure and
    /// clock-free: depends only on the input set. Unknown future sessions
    /// never appear, and the newest session is always retained (a policy
    /// that kept nothing would delete the backup it was asked to protect;
    /// `KeepLast(0)` and an all-zero GFS still keep the newest).
    pub fn retained(&self, sessions: &[usize]) -> BTreeSet<usize> {
        let ordered: BTreeSet<usize> = sessions.iter().copied().collect();
        let Some(&newest) = ordered.iter().next_back() else {
            return BTreeSet::new();
        };
        let mut keep = BTreeSet::new();
        keep.insert(newest);
        match *self {
            RetentionPolicy::KeepLast(n) => {
                keep.extend(ordered.iter().rev().take(n.max(1)).copied());
            }
            RetentionPolicy::Gfs { daily, weekly, monthly } => {
                // Bucket index 0 is the newest day/week/month, measured
                // in ages back from the newest session; keep the newest
                // surviving session inside each of the first `n` buckets.
                let newest_in_bucket = |span: usize, budget: usize, keep: &mut BTreeSet<usize>| {
                    for bucket in 0..budget {
                        let survivor = ordered.iter().rev().find(|&&s| {
                            let age = newest - s;
                            age >= bucket * span && age < (bucket + 1) * span
                        });
                        if let Some(&s) = survivor {
                            keep.insert(s);
                        }
                    }
                };
                newest_in_bucket(1, daily, &mut keep);
                newest_in_bucket(7, weekly, &mut keep);
                newest_in_bucket(30, monthly, &mut keep);
            }
        }
        keep
    }
}

/// What one retention pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Sessions that existed before the pass.
    pub examined: usize,
    /// Sessions the policy preserved.
    pub retained: usize,
    /// Sessions deleted by the pass.
    pub deleted: usize,
}

impl AaDedupe {
    /// Applies `policy`: deletes every existing session the policy does
    /// not retain, oldest first, through the ordinary crash-consistent
    /// [`delete_session`](Self::delete_session) protocol. Stops at the
    /// first error (already-deleted sessions are not an error — they are
    /// simply absent from the listing).
    pub fn apply_retention(
        &mut self,
        policy: &RetentionPolicy,
    ) -> Result<RetentionReport, BackupError> {
        let sessions = self.list_sessions();
        let keep = policy.retained(&sessions);
        let mut report = RetentionReport {
            examined: sessions.len(),
            retained: keep.len(),
            deleted: 0,
        };
        for s in sessions {
            if keep.contains(&s) {
                continue;
            }
            self.delete_session(s)?;
            report.deleted += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retained(policy: RetentionPolicy, sessions: &[usize]) -> Vec<usize> {
        policy.retained(sessions).into_iter().collect()
    }

    #[test]
    fn keep_last_takes_newest_n() {
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(retained(RetentionPolicy::KeepLast(3), &all), vec![7, 8, 9]);
        assert_eq!(retained(RetentionPolicy::KeepLast(99), &all), all);
    }

    #[test]
    fn keep_last_zero_still_keeps_newest() {
        assert_eq!(retained(RetentionPolicy::KeepLast(0), &[2, 5, 9]), vec![9]);
    }

    #[test]
    fn empty_input_retains_nothing() {
        assert!(retained(RetentionPolicy::KeepLast(5), &[]).is_empty());
    }

    #[test]
    fn keep_last_ignores_gaps() {
        // Sessions 3 and 6 were already pruned.
        assert_eq!(retained(RetentionPolicy::KeepLast(3), &[0, 1, 2, 4, 5, 7]), vec![4, 5, 7]);
    }

    #[test]
    fn gfs_keeps_newest_per_bucket() {
        // 60 daily sessions, policy 7d/4w/2m.
        let all: Vec<usize> = (0..60).collect();
        let keep =
            retained(RetentionPolicy::Gfs { daily: 7, weekly: 4, monthly: 2 }, &all);
        // Dailies: the last 7 sessions.
        for s in 53..60 {
            assert!(keep.contains(&s), "daily {s} kept");
        }
        // Weeklies: newest of each 7-session window back from 59.
        for w in 0..4 {
            assert!(keep.contains(&(59 - 7 * w)), "weekly bucket {w}");
        }
        // Monthlies: newest of each 30-session window back from 59.
        for m in 0..2 {
            assert!(keep.contains(&(59 - 30 * m)), "monthly bucket {m}");
        }
        // Nothing ancient survives outside the buckets.
        assert!(!keep.contains(&0));
        assert!(keep.len() <= 7 + 4 + 2);
    }

    #[test]
    fn gfs_all_zero_still_keeps_newest() {
        let keep =
            retained(RetentionPolicy::Gfs { daily: 0, weekly: 0, monthly: 0 }, &[1, 2, 3]);
        assert_eq!(keep, vec![3]);
    }

    #[test]
    fn gfs_with_gaps_uses_surviving_sessions() {
        // Weekly bucket 1 (ages 7..14) lost its newest; the next newest
        // surviving session of that bucket is kept instead.
        let sessions = vec![40, 45, 46, 50, 52, 59];
        let keep = retained(
            RetentionPolicy::Gfs { daily: 1, weekly: 2, monthly: 0 },
            &sessions,
        );
        assert!(keep.contains(&59), "newest always kept");
        // Bucket 1 spans ages 7..14 → sessions 45..=52; its newest
        // survivor is 52.
        assert!(keep.contains(&52), "weekly bucket 1 newest survivor");
    }

    #[test]
    fn retained_is_deterministic() {
        let all: Vec<usize> = (0..40).collect();
        let p = RetentionPolicy::Gfs { daily: 3, weekly: 2, monthly: 1 };
        assert_eq!(p.retained(&all), p.retained(&all));
    }
}
