//! Manifest-driven restore.
//!
//! Restore is the correctness oracle of the whole system: for any past
//! session, fetch its manifest, fetch each referenced container exactly
//! once (chunk locality makes this cheap — the paper groups chunks "likely
//! to be retrieved together"), extract and *verify* every chunk against
//! its fingerprint, and reassemble the files byte-for-byte.

use std::collections::HashMap;

use aadedupe_cloud::CloudSim;
use aadedupe_container::ParsedContainer;
use aadedupe_hashing::Fingerprint;

use crate::recipe::Manifest;
use crate::scheme::BackupError;

/// One restored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredFile {
    /// Original path.
    pub path: String,
    /// Reconstructed contents.
    pub data: Vec<u8>,
}

/// The cloud object key for a scheme's container.
pub fn container_key(scheme: &str, container: u64) -> String {
    format!("{scheme}/containers/{container:012}")
}

/// Restores every file of `session` from `scheme_key`'s cloud namespace.
pub fn restore_session(
    cloud: &CloudSim,
    scheme_key: &str,
    session: u64,
) -> Result<Vec<RestoredFile>, BackupError> {
    let mkey = Manifest::key(scheme_key, session);
    let (bytes, _t) = cloud.get(&mkey)?;
    let bytes = bytes.ok_or(BackupError::UnknownSession(session as usize))?;
    let manifest = Manifest::decode(&bytes)?;

    // Fetch each referenced container once.
    let mut containers: HashMap<u64, ParsedContainer> = HashMap::new();
    for f in &manifest.files {
        for c in &f.chunks {
            if let std::collections::hash_map::Entry::Vacant(slot) =
                containers.entry(c.container)
            {
                let key = container_key(scheme_key, c.container);
                let (raw, _t) = cloud.get(&key)?;
                let raw = raw.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
                let parsed = ParsedContainer::parse(&raw)
                    .map_err(|e| BackupError::Corrupt(format!("{key}: {e}")))?;
                slot.insert(parsed);
            }
        }
    }

    let mut out = Vec::with_capacity(manifest.files.len());
    for f in &manifest.files {
        let mut data = Vec::with_capacity(f.file_len() as usize);
        for c in &f.chunks {
            let container = containers
                .get(&c.container)
                .expect("prefetched above");
            let descriptor = container
                .descriptors
                .iter()
                .find(|d| d.offset == c.offset && d.fingerprint == c.fingerprint)
                .ok_or_else(|| {
                    BackupError::Corrupt(format!(
                        "container {} lacks chunk {} at offset {}",
                        c.container, c.fingerprint, c.offset
                    ))
                })?;
            let chunk = container.chunk_bytes(descriptor);
            if chunk.len() != c.len as usize {
                return Err(BackupError::Corrupt(format!(
                    "chunk {} length mismatch: recipe {} vs container {}",
                    c.fingerprint,
                    c.len,
                    chunk.len()
                )));
            }
            let recomputed = Fingerprint::compute(c.fingerprint.algorithm(), chunk);
            if recomputed != c.fingerprint {
                return Err(BackupError::Verification(format!(
                    "chunk at {}:{} does not match fingerprint {}",
                    c.container, c.offset, c.fingerprint
                )));
            }
            data.extend_from_slice(chunk);
        }
        out.push(RestoredFile { path: f.path.clone(), data });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::{ChunkRef, FileRecipe};
    use aadedupe_container::ContainerStore;
    use aadedupe_filetype::AppType;
    use aadedupe_hashing::HashAlgorithm;

    /// Builds a one-session cloud by hand: two chunks in one container.
    fn setup() -> (CloudSim, Vec<Vec<u8>>) {
        let cloud = CloudSim::with_paper_defaults();
        let chunks = vec![b"hello world ".repeat(10), b"second chunk".repeat(20)];
        let mut store = ContainerStore::new(1 << 16);
        let mut refs = Vec::new();
        for ch in &chunks {
            let fp = Fingerprint::compute(HashAlgorithm::Sha1, ch);
            let p = store.add_chunk(0, fp, ch);
            refs.push(ChunkRef {
                fingerprint: fp,
                len: ch.len() as u32,
                container: p.container,
                offset: p.offset,
            });
        }
        store.seal_all();
        for sc in store.drain_sealed() {
            cloud.put(&container_key("test", sc.id), sc.bytes).unwrap();
        }
        let manifest = Manifest {
            session: 0,
            files: vec![FileRecipe {
                path: "user/txt/a.txt".into(),
                app: AppType::Txt,
                tiny: false,
                chunks: refs,
            }],
        };
        cloud.put(&Manifest::key("test", 0), manifest.encode()).unwrap();
        (cloud, chunks)
    }

    #[test]
    fn restores_bit_exact() {
        let (cloud, chunks) = setup();
        let files = restore_session(&cloud, "test", 0).unwrap();
        assert_eq!(files.len(), 1);
        let expected: Vec<u8> = chunks.concat();
        assert_eq!(files[0].data, expected);
        assert_eq!(files[0].path, "user/txt/a.txt");
    }

    #[test]
    fn unknown_session() {
        let (cloud, _) = setup();
        assert_eq!(
            restore_session(&cloud, "test", 5).unwrap_err(),
            BackupError::UnknownSession(5)
        );
    }

    #[test]
    fn missing_container_detected() {
        let (cloud, _) = setup();
        let keys = cloud.store().list("test/containers/");
        for k in keys {
            cloud.store().delete(&k).unwrap();
        }
        assert!(matches!(
            restore_session(&cloud, "test", 0).unwrap_err(),
            BackupError::MissingObject(_)
        ));
    }

    #[test]
    fn corrupted_chunk_fails_verification() {
        let (cloud, _) = setup();
        let key = cloud.store().list("test/containers/")[0].clone();
        // Flip a byte inside the first chunk's payload (positions near the
        // container end can be harmless padding).
        let raw = cloud.store().get(&key).unwrap().unwrap();
        let parsed = ParsedContainer::parse(&raw).unwrap();
        let desc_len: usize = parsed.descriptors.iter().map(|d| d.encoded_len()).sum();
        let target = aadedupe_container::format::HEADER_LEN
            + desc_len
            + parsed.descriptors[0].offset as usize;
        cloud.store().corrupt(&key, target);
        let err = restore_session(&cloud, "test", 0).unwrap_err();
        assert!(
            matches!(err, BackupError::Verification(_) | BackupError::Corrupt(_)),
            "{err:?}"
        );
    }

    #[test]
    fn corrupted_manifest_detected() {
        let (cloud, _) = setup();
        let key = Manifest::key("test", 0);
        cloud.store().corrupt(&key, 2);
        assert!(matches!(
            restore_session(&cloud, "test", 0).unwrap_err(),
            BackupError::Corrupt(_)
        ));
    }
}
