//! Manifest-driven restore.
//!
//! Restore is the correctness oracle of the whole system: for any past
//! session, fetch its manifest, fetch each referenced container (chunk
//! locality makes this cheap — the paper groups chunks "likely to be
//! retrieved together"), extract and *verify* every chunk against its
//! fingerprint, and reassemble the files byte-for-byte.
//!
//! Two engines share that contract:
//!
//! * [`restore_session`] — the serial reference implementation: fetch
//!   every referenced container up front, then assemble. Simple, but its
//!   peak memory is O(session) and a single transient GET aborts it. It
//!   is kept as the oracle the pipelined engine is differentially tested
//!   against (and as the restore path of the baseline schemes).
//! * [`restore_session_pipelined`] — the production path: a planner walks
//!   the manifest and computes each container's reference window, N
//!   fetch/parse/verify workers download containers concurrently under
//!   the same [`RetryPolicy`] backoff/budget machinery uploads use, and
//!   an assembler reconstructs files in manifest order from a bounded
//!   container cache ([`aadedupe_index::LruSet`]). A container is evicted
//!   as soon as its last referencing chunk is consumed, so peak memory is
//!   O([`RestoreOptions::cache_capacity`]), not O(session).
//!
//! # Determinism contract
//!
//! For a fixed manifest, restored bytes and verification outcomes are
//! identical for any worker count: the assembler consumes chunks in
//! manifest order, and a failed container download or verification is
//! surfaced only at the failing container's first *consumed* reference —
//! never at arrival time, which would depend on worker scheduling.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use aadedupe_cloud::CloudSim;
use aadedupe_container::{ChunkDescriptor, ParsedContainer};
use aadedupe_hashing::Fingerprint;
use aadedupe_index::LruSet;
use aadedupe_obs::{Counter, Queue, Recorder, Stage, WorkerRole};

use crate::recipe::{FileRecipe, Manifest};
use crate::retry::RetryPolicy;
use crate::scheme::BackupError;

/// One restored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredFile {
    /// Original path.
    pub path: String,
    /// Reconstructed contents.
    pub data: Vec<u8>,
}

/// Settings for the pipelined restore engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreOptions {
    /// Fetch/parse/verify worker threads.
    pub workers: usize,
    /// Maximum containers resident (fetched or in flight) at once — the
    /// restore memory bound. When a point in the manifest references more
    /// overlapping containers than this, the assembler evicts the
    /// least-recently-used one and refetches it on its next reference,
    /// trading extra GETs for the bound.
    pub cache_capacity: usize,
}

impl Default for RestoreOptions {
    fn default() -> Self {
        RestoreOptions { workers: 1, cache_capacity: 16 }
    }
}

/// The cloud object key for a scheme's container.
pub fn container_key(scheme: &str, container: u64) -> String {
    format!("{scheme}/containers/{container:012}")
}

/// Restores every file of `session` from `scheme_key`'s cloud namespace.
///
/// Serial reference implementation — see the module docs; production
/// callers use [`restore_session_pipelined`].
pub fn restore_session(
    cloud: &CloudSim,
    scheme_key: &str,
    session: u64,
) -> Result<Vec<RestoredFile>, BackupError> {
    let mkey = Manifest::key(scheme_key, session);
    let (bytes, _t) = cloud.get(&mkey)?;
    let bytes = bytes.ok_or(BackupError::UnknownSession(session as usize))?;
    let manifest = Manifest::decode(&bytes)?;

    // Fetch each referenced container once, building its descriptor
    // lookup table at parse time.
    let mut containers: HashMap<u64, FetchedContainer> = HashMap::new();
    for f in &manifest.files {
        for c in &f.chunks {
            if let std::collections::hash_map::Entry::Vacant(slot) =
                containers.entry(c.container)
            {
                let key = container_key(scheme_key, c.container);
                let (raw, _t) = cloud.get(&key)?;
                let raw = raw.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
                let parsed = ParsedContainer::parse(&raw)
                    .map_err(|e| BackupError::Corrupt(format!("{key}: {e}")))?;
                let map = parsed.descriptor_map();
                slot.insert(FetchedContainer { parsed, map });
            }
        }
    }

    let mut out = Vec::with_capacity(manifest.files.len());
    for f in &manifest.files {
        let mut data = Vec::with_capacity(f.file_len() as usize);
        for c in &f.chunks {
            // aalint: allow(unwrap-in-lib) -- the prefetch loop above inserted every container this manifest references; absence is a logic bug, not an input error
            let container = containers.get(&c.container).expect("prefetched above");
            let descriptor = lookup_descriptor(container, c.container, c.offset, &c.fingerprint)?;
            let chunk = container.parsed.chunk_bytes(&descriptor);
            check_len(&c.fingerprint, c.len, &descriptor)?;
            verify_chunk(c.container, c.offset, &c.fingerprint, chunk)?;
            data.extend_from_slice(chunk);
        }
        out.push(RestoredFile { path: f.path.clone(), data });
    }
    Ok(out)
}

/// Restores every file of `session` through the pipelined bounded-memory
/// engine. Byte-identical to [`restore_session`] for any `opts`.
pub fn restore_session_pipelined(
    cloud: &CloudSim,
    scheme_key: &str,
    session: u64,
    opts: &RestoreOptions,
    retry: &RetryPolicy,
    rec: &Recorder,
) -> Result<Vec<RestoredFile>, BackupError> {
    let budget = AtomicU32::new(retry.session_retry_budget);
    let manifest = fetch_manifest(cloud, scheme_key, session, retry, &budget, rec)?;
    let files: Vec<&FileRecipe> = manifest.files.iter().collect();
    run_pipeline(cloud, scheme_key, &files, opts, retry, &budget, rec)
}

/// Restores one file by path from `session`, fetching only the containers
/// that file's recipe references.
pub fn restore_file_pipelined(
    cloud: &CloudSim,
    scheme_key: &str,
    session: u64,
    path: &str,
    opts: &RestoreOptions,
    retry: &RetryPolicy,
    rec: &Recorder,
) -> Result<RestoredFile, BackupError> {
    let budget = AtomicU32::new(retry.session_retry_budget);
    let manifest = fetch_manifest(cloud, scheme_key, session, retry, &budget, rec)?;
    let recipe = manifest
        .files
        .iter()
        .find(|f| f.path == path)
        .ok_or_else(|| BackupError::MissingObject(format!("session {session}: {path}")))?;
    let mut files = run_pipeline(cloud, scheme_key, &[recipe], opts, retry, &budget, rec)?;
    // aalint: allow(unwrap-in-lib) -- run_pipeline returns exactly one RestoredFile per input recipe
    Ok(files.pop().expect("one recipe in, one file out"))
}

/// A parsed container plus its O(1) descriptor lookup table.
struct FetchedContainer {
    parsed: ParsedContainer,
    map: HashMap<(u32, Fingerprint), ChunkDescriptor>,
}

/// One container's fetch/verify work order: the distinct chunk references
/// this restore resolves against it.
struct ContainerJob {
    container: u64,
    /// Distinct `(offset, fingerprint, recipe length)` references.
    refs: Vec<(u32, Fingerprint, u32)>,
}

/// What the planner extracts from the manifest.
struct RestorePlan {
    /// Containers in first-reference order — the fetch issue order.
    order: Vec<ContainerJob>,
    /// Container id → global chunk-sequence number of its last reference
    /// (the eviction point).
    last_use: HashMap<u64, usize>,
}

/// Walks the recipes in manifest order, computing each container's
/// reference window and distinct reference set.
fn plan_restore(files: &[&FileRecipe]) -> RestorePlan {
    let mut order: Vec<ContainerJob> = Vec::new();
    let mut slot: HashMap<u64, usize> = HashMap::new();
    let mut seen: HashMap<u64, HashSet<(u32, Fingerprint)>> = HashMap::new();
    let mut last_use: HashMap<u64, usize> = HashMap::new();
    let mut seq = 0usize;
    for f in files {
        for c in &f.chunks {
            let idx = *slot.entry(c.container).or_insert_with(|| {
                order.push(ContainerJob { container: c.container, refs: Vec::new() });
                order.len() - 1
            });
            if seen.entry(c.container).or_default().insert((c.offset, c.fingerprint)) {
                // aalint: allow(panic-path) -- idx was pushed into order in the same entry() insertion that minted it
                order[idx].refs.push((c.offset, c.fingerprint, c.len));
            }
            last_use.insert(c.container, seq);
            seq += 1;
        }
    }
    RestorePlan { order, last_use }
}

/// Fetches and decodes a session's manifest, retrying transient failures.
fn fetch_manifest(
    cloud: &CloudSim,
    scheme_key: &str,
    session: u64,
    retry: &RetryPolicy,
    budget: &AtomicU32,
    rec: &Recorder,
) -> Result<Manifest, BackupError> {
    let mkey = Manifest::key(scheme_key, session);
    // Jitter op_seq: outside the container-id space so the manifest's
    // backoff schedule never collides with a container's.
    let bytes = get_with_retry(cloud, &mkey, retry, budget, u64::MAX, rec)?;
    let bytes = bytes.ok_or(BackupError::UnknownSession(session as usize))?;
    Manifest::decode(&bytes)
}

/// Downloads one object, retrying transient failures under `retry` and the
/// shared per-restore `budget`. The mirror of the engine's upload
/// `put_with_retry`: backoff is charged to the simulated transfer clock
/// (and optionally slept), `op_seq` feeds the deterministic jitter, and
/// exhausting the attempts or the budget — or any permanent failure —
/// counts a restore give-up and surfaces the backend error.
fn get_with_retry(
    cloud: &CloudSim,
    key: &str,
    policy: &RetryPolicy,
    budget: &AtomicU32,
    op_seq: u64,
    rec: &Recorder,
) -> Result<Option<Vec<u8>>, BackupError> {
    let mut attempt = 1u32;
    loop {
        match cloud.get(key) {
            Ok((bytes, _t)) => return Ok(bytes),
            Err(e)
                if e.transient
                    && attempt < policy.max_attempts.max(1)
                    && budget.fetch_update(Relaxed, Relaxed, |b| b.checked_sub(1)).is_ok() =>
            {
                rec.count(Counter::RestoreRetries, 1);
                let wait = policy.backoff(attempt, op_seq);
                cloud.charge(wait);
                if policy.sleep && !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                attempt += 1;
            }
            Err(e) => {
                rec.count(Counter::RestoreGiveups, 1);
                return Err(BackupError::Cloud(format!(
                    "{e} (attempt {attempt} of {})",
                    policy.max_attempts.max(1)
                )));
            }
        }
    }
}

fn lookup_descriptor(
    fc: &FetchedContainer,
    container: u64,
    offset: u32,
    fp: &Fingerprint,
) -> Result<ChunkDescriptor, BackupError> {
    fc.map.get(&(offset, *fp)).copied().ok_or_else(|| {
        BackupError::Corrupt(format!(
            "container {container} lacks chunk {fp} at offset {offset}"
        ))
    })
}

fn check_len(fp: &Fingerprint, recipe_len: u32, d: &ChunkDescriptor) -> Result<(), BackupError> {
    if d.len != recipe_len {
        return Err(BackupError::Corrupt(format!(
            "chunk {} length mismatch: recipe {} vs container {}",
            fp, recipe_len, d.len
        )));
    }
    Ok(())
}

fn verify_chunk(
    container: u64,
    offset: u32,
    fp: &Fingerprint,
    chunk: &[u8],
) -> Result<(), BackupError> {
    let recomputed = Fingerprint::compute(fp.algorithm(), chunk);
    if recomputed != *fp {
        return Err(BackupError::Verification(format!(
            "chunk at {container}:{offset} does not match fingerprint {fp}"
        )));
    }
    Ok(())
}

/// Fetches, parses and verifies one container (worker body). Verification
/// resolves every distinct reference through the descriptor map and
/// checks length then fingerprint — the same order, and the same error
/// messages, as the serial engine.
fn fetch_parse_verify(
    cloud: &CloudSim,
    scheme_key: &str,
    job: &ContainerJob,
    policy: &RetryPolicy,
    budget: &AtomicU32,
    rec: &Recorder,
) -> Result<FetchedContainer, BackupError> {
    let key = container_key(scheme_key, job.container);
    let fetching = rec.start();
    let raw = get_with_retry(cloud, &key, policy, budget, job.container, rec)?;
    let raw = raw.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
    let parsed = ParsedContainer::parse(&raw)
        .map_err(|e| BackupError::Corrupt(format!("{key}: {e}")))?;
    let map = parsed.descriptor_map();
    let fc = FetchedContainer { parsed, map };
    rec.record(Stage::RestoreFetch, fetching);
    let verifying = rec.start();
    for (offset, fp, len) in &job.refs {
        let d = lookup_descriptor(&fc, job.container, *offset, fp)?;
        check_len(fp, *len, &d)?;
        verify_chunk(job.container, *offset, fp, fc.parsed.chunk_bytes(&d))?;
    }
    rec.record(Stage::RestoreVerify, verifying);
    Ok(fc)
}

/// Runs the planner → workers → assembler pipeline over `files`.
fn run_pipeline(
    cloud: &CloudSim,
    scheme_key: &str,
    files: &[&FileRecipe],
    opts: &RestoreOptions,
    retry: &RetryPolicy,
    budget: &AtomicU32,
    rec: &Recorder,
) -> Result<Vec<RestoredFile>, BackupError> {
    let plan = plan_restore(files);
    let capacity = opts.cache_capacity.max(1);
    // More workers than containers would just be idle threads.
    let workers = opts.workers.max(1).min(plan.order.len().max(1));

    let (job_tx, job_rx) = mpsc::channel::<ContainerJob>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (done_tx, done_rx) = mpsc::channel::<(u64, Result<FetchedContainer, BackupError>)>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                let mut busy = Duration::ZERO;
                let mut idle = Duration::ZERO;
                loop {
                    let waiting = rec.start();
                    // aalint: allow(blocking-under-lock) -- spmc handoff: the mutex exists only to share the receiver; holding it across recv() is the protocol
                    let job = job_rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv();
                    let Ok(job) = job else { break };
                    if let Some(t) = waiting {
                        idle += t.elapsed();
                    }
                    let working = rec.start();
                    let result = fetch_parse_verify(cloud, scheme_key, &job, retry, budget, rec);
                    if let Some(t) = working {
                        busy += t.elapsed();
                    }
                    // A closed completion channel means the assembler
                    // aborted; drain out quietly.
                    if done_tx.send((job.container, result)).is_err() {
                        break;
                    }
                }
                rec.worker_report(WorkerRole::Restorer, w, busy, idle);
            });
        }
        drop(done_tx);
        // Runs on this thread; dropping `job_tx` on return shuts the
        // workers down and the scope joins them.
        assemble(files, plan, job_tx, &done_rx, capacity, rec)
    })
}

/// Keeps up to `capacity` containers issued-or-resident. Issue order is
/// first-use order, so the window always prefetches what assembly needs
/// next. A send can only fail after a worker panic; the next completion
/// recv surfaces that.
fn top_up(
    pending: &mut VecDeque<ContainerJob>,
    in_flight: &mut HashSet<u64>,
    resident_len: usize,
    capacity: usize,
    job_tx: &mpsc::Sender<ContainerJob>,
) {
    while in_flight.len() + resident_len < capacity {
        let Some(job) = pending.pop_front() else { break };
        in_flight.insert(job.container);
        if job_tx.send(job).is_err() {
            break;
        }
    }
}

/// Reconstructs the files in manifest order from worker completions,
/// holding at most `capacity` containers resident.
fn assemble(
    files: &[&FileRecipe],
    plan: RestorePlan,
    job_tx: mpsc::Sender<ContainerJob>,
    done_rx: &mpsc::Receiver<(u64, Result<FetchedContainer, BackupError>)>,
    capacity: usize,
    rec: &Recorder,
) -> Result<Vec<RestoredFile>, BackupError> {
    let RestorePlan { order, last_use } = plan;
    // Reference sets are kept so a force-evicted container can be
    // re-issued — O(distinct refs), not container data.
    let spare_refs: HashMap<u64, Vec<(u32, Fingerprint, u32)>> =
        order.iter().map(|j| (j.container, j.refs.clone())).collect();
    let mut pending: VecDeque<ContainerJob> = order.into();
    let mut in_flight: HashSet<u64> = HashSet::new();
    let mut resident: LruSet<u64> = LruSet::new(capacity);
    let mut cache: HashMap<u64, FetchedContainer> = HashMap::new();
    // Failed downloads/verifications, raised only when (and if) consumed.
    let mut failed: HashMap<u64, BackupError> = HashMap::new();

    top_up(&mut pending, &mut in_flight, resident.len(), capacity, &job_tx);

    let mut out = Vec::with_capacity(files.len());
    let mut seq = 0usize;
    for f in files {
        let assembling = rec.start();
        let mut data = Vec::with_capacity(f.file_len() as usize);
        for c in &f.chunks {
            while !cache.contains_key(&c.container) {
                if let Some(e) = failed.remove(&c.container) {
                    return Err(e);
                }
                if !in_flight.contains(&c.container) {
                    // Its turn in issue order came while the window was
                    // full, or it was force-evicted earlier: issue it now,
                    // ahead of the window accounting.
                    let job = match pending.pop_front() {
                        Some(j) if j.container == c.container => j,
                        other => {
                            // Not the head of issue order (or the queue is
                            // drained): restore the head and synthesize the
                            // job from the spare reference sets.
                            if let Some(j) = other {
                                pending.push_front(j);
                            }
                            ContainerJob {
                                container: c.container,
                                // aalint: allow(panic-path) -- plan_restore seeds spare_refs with every container the plan references
                                refs: spare_refs[&c.container].clone(),
                            }
                        }
                    };
                    in_flight.insert(c.container);
                    // aalint: allow(swallowed-result) -- send fails only after a worker panic; the recv below surfaces it as a Cloud error
                    let _ = job_tx.send(job);
                }
                let (id, result) = done_rx
                    .recv()
                    .map_err(|_| BackupError::Cloud("restore workers exited early".into()))?;
                in_flight.remove(&id);
                match result {
                    Ok(fc) => {
                        if resident.len() == capacity {
                            // Over-capacity admission (more overlapping
                            // containers than cache slots): evict the
                            // least-recently-used resident container; it
                            // is refetched if referenced again.
                            // aalint: allow(unwrap-in-lib) -- guarded by len == capacity with capacity clamped to >= 1, so the LRU set is non-empty
                            let victim = *resident.peek_lru().expect("cache is full");
                            resident.remove(&victim);
                            cache.remove(&victim);
                            rec.queue_pop(Queue::RestoreCache);
                        }
                        rec.queue_push(Queue::RestoreCache);
                        resident.insert(id);
                        cache.insert(id, fc);
                    }
                    Err(e) => {
                        failed.insert(id, e);
                    }
                }
                top_up(&mut pending, &mut in_flight, resident.len(), capacity, &job_tx);
            }
            // aalint: allow(panic-path) -- the prefetch loop inserted every container this manifest references before any chunk is assembled
            let fc = &cache[&c.container];
            resident.touch(&c.container);
            let d = lookup_descriptor(fc, c.container, c.offset, &c.fingerprint)?;
            check_len(&c.fingerprint, c.len, &d)?;
            let chunk = fc.parsed.chunk_bytes(&d);
            rec.count(Counter::RestoredBytes, chunk.len() as u64);
            data.extend_from_slice(chunk);
            if last_use.get(&c.container) == Some(&seq) {
                // Last referencing chunk consumed: free the slot.
                resident.remove(&c.container);
                cache.remove(&c.container);
                rec.queue_pop(Queue::RestoreCache);
                top_up(&mut pending, &mut in_flight, resident.len(), capacity, &job_tx);
            }
            seq += 1;
        }
        rec.record(Stage::RestoreAssemble, assembling);
        out.push(RestoredFile { path: f.path.clone(), data });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::{ChunkRef, FileRecipe};
    use aadedupe_container::ContainerStore;
    use aadedupe_filetype::AppType;
    use aadedupe_hashing::HashAlgorithm;

    /// Builds a one-session cloud by hand: two chunks in one container.
    fn setup() -> (CloudSim, Vec<Vec<u8>>) {
        let cloud = CloudSim::with_paper_defaults();
        let chunks = vec![b"hello world ".repeat(10), b"second chunk".repeat(20)];
        let mut store = ContainerStore::new(1 << 16);
        let mut refs = Vec::new();
        for ch in &chunks {
            let fp = Fingerprint::compute(HashAlgorithm::Sha1, ch);
            let p = store.add_chunk(0, fp, ch);
            refs.push(ChunkRef {
                fingerprint: fp,
                len: ch.len() as u32,
                container: p.container,
                offset: p.offset,
            });
        }
        store.seal_all();
        for sc in store.drain_sealed() {
            cloud.put(&container_key("test", sc.id), sc.bytes).unwrap();
        }
        let manifest = Manifest {
            session: 0,
            files: vec![FileRecipe {
                path: "user/txt/a.txt".into(),
                app: AppType::Txt,
                tiny: false,
                chunks: refs,
            }],
        };
        cloud.put(&Manifest::key("test", 0), manifest.encode()).unwrap();
        (cloud, chunks)
    }

    fn pipelined(
        cloud: &CloudSim,
        session: u64,
        workers: usize,
    ) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session_pipelined(
            cloud,
            "test",
            session,
            &RestoreOptions { workers, cache_capacity: 2 },
            &RetryPolicy::default(),
            &Recorder::disabled(),
        )
    }

    #[test]
    fn restores_bit_exact() {
        let (cloud, chunks) = setup();
        let files = restore_session(&cloud, "test", 0).unwrap();
        assert_eq!(files.len(), 1);
        let expected: Vec<u8> = chunks.concat();
        assert_eq!(files[0].data, expected);
        assert_eq!(files[0].path, "user/txt/a.txt");
    }

    #[test]
    fn pipelined_matches_serial() {
        let (cloud, _) = setup();
        let serial = restore_session(&cloud, "test", 0).unwrap();
        for workers in [1, 2, 4] {
            assert_eq!(pipelined(&cloud, 0, workers).unwrap(), serial, "workers={workers}");
        }
    }

    #[test]
    fn pipelined_restore_file_finds_one_file() {
        let (cloud, chunks) = setup();
        let file = restore_file_pipelined(
            &cloud,
            "test",
            0,
            "user/txt/a.txt",
            &RestoreOptions::default(),
            &RetryPolicy::default(),
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(file.data, chunks.concat());
        let missing = restore_file_pipelined(
            &cloud,
            "test",
            0,
            "no/such/file",
            &RestoreOptions::default(),
            &RetryPolicy::default(),
            &Recorder::disabled(),
        );
        assert!(matches!(missing.unwrap_err(), BackupError::MissingObject(_)));
    }

    #[test]
    fn unknown_session() {
        let (cloud, _) = setup();
        assert_eq!(
            restore_session(&cloud, "test", 5).unwrap_err(),
            BackupError::UnknownSession(5)
        );
        assert_eq!(pipelined(&cloud, 5, 2).unwrap_err(), BackupError::UnknownSession(5));
    }

    #[test]
    fn missing_container_detected() {
        let (cloud, _) = setup();
        let keys = cloud.store().list("test/containers/");
        for k in keys {
            cloud.store().delete(&k).unwrap();
        }
        assert!(matches!(
            restore_session(&cloud, "test", 0).unwrap_err(),
            BackupError::MissingObject(_)
        ));
        for workers in [1, 4] {
            assert!(matches!(
                pipelined(&cloud, 0, workers).unwrap_err(),
                BackupError::MissingObject(_)
            ));
        }
    }

    #[test]
    fn corrupted_chunk_fails_verification() {
        let (cloud, _) = setup();
        let key = cloud.store().list("test/containers/")[0].clone();
        // Flip a byte inside the first chunk's payload (positions near the
        // container end can be harmless padding).
        let raw = cloud.store().get(&key).unwrap().unwrap();
        let parsed = ParsedContainer::parse(&raw).unwrap();
        let desc_len: usize = parsed.descriptors.iter().map(aadedupe_container::ChunkDescriptor::encoded_len).sum();
        let target = aadedupe_container::format::HEADER_LEN
            + desc_len
            + parsed.descriptors[0].offset as usize;
        cloud.store().corrupt(&key, target);
        let err = restore_session(&cloud, "test", 0).unwrap_err();
        assert!(
            matches!(err, BackupError::Verification(_) | BackupError::Corrupt(_)),
            "{err:?}"
        );
        for workers in [1, 4] {
            let perr = pipelined(&cloud, 0, workers).unwrap_err();
            assert!(
                matches!(perr, BackupError::Verification(_) | BackupError::Corrupt(_)),
                "workers={workers}: {perr:?}"
            );
        }
    }

    #[test]
    fn corrupted_manifest_detected() {
        let (cloud, _) = setup();
        let key = Manifest::key("test", 0);
        cloud.store().corrupt(&key, 2);
        assert!(matches!(
            restore_session(&cloud, "test", 0).unwrap_err(),
            BackupError::Corrupt(_)
        ));
        assert!(matches!(pipelined(&cloud, 0, 2).unwrap_err(), BackupError::Corrupt(_)));
    }

    #[test]
    fn planner_windows_and_dedups_references() {
        let fp = |b: &[u8]| Fingerprint::compute(HashAlgorithm::Md5, b);
        let chunk = |container: u64, offset: u32, data: &[u8]| ChunkRef {
            fingerprint: fp(data),
            len: data.len() as u32,
            container,
            offset,
        };
        let file = FileRecipe {
            path: "f".into(),
            app: AppType::Txt,
            tiny: false,
            // Containers first used in order 7, 3, 7 again (duplicate
            // reference), then 9.
            chunks: vec![
                chunk(7, 0, b"a"),
                chunk(3, 0, b"b"),
                chunk(7, 0, b"a"),
                chunk(9, 4, b"c"),
            ],
        };
        let plan = plan_restore(&[&file]);
        let ids: Vec<u64> = plan.order.iter().map(|j| j.container).collect();
        assert_eq!(ids, vec![7, 3, 9], "first-use order");
        assert_eq!(plan.order[0].refs.len(), 1, "duplicate reference deduplicated");
        assert_eq!(plan.last_use[&7], 2, "evicted after its second use");
        assert_eq!(plan.last_use[&3], 1);
        assert_eq!(plan.last_use[&9], 3);
    }
}
