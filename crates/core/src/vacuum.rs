//! Vacuum: threshold-driven container rewriting and space reclamation.
//!
//! Dead chunks accumulate *inside* live containers: deleting a session
//! only removes containers whose every chunk is dead, so under years of
//! churn the stored-to-live ratio erodes toward the worst case. The
//! vacuum pass reclaims that slack by rewriting containers whose live
//! ratio fell below a threshold (and combining undersized survivors of
//! the same stream) into fresh container ids, on top of the
//! [`compact_container`] primitive, then repointing every manifest,
//! index entry and tiny-file reference at the new placements so restores
//! stay bit-exact.
//!
//! # Algorithm
//!
//! 1. **Analyze** ([`Stage::VacuumAnalyze`]): fetch every manifest,
//!    fold the per-container live fingerprint sets and live byte counts,
//!    fetch and parse every container, and classify each as *retained*
//!    (healthy), *dead* (no live chunk — deleted outright, which also
//!    covers crash leftovers and sweep debt), or a *rewrite candidate*
//!    (live ratio < `ratio`, or undersized with a same-stream partner to
//!    combine with).
//! 2. **Rewrite** ([`Stage::VacuumRewrite`]): per stream, in container-id
//!    order, repack surviving chunks into fresh ids — solo candidates
//!    through [`compact_container`], combine groups through a packer that
//!    rolls containers at the configured size — building the relocation
//!    map `(old container, old offset, fingerprint) → new placement`.
//! 3. **Commit** ([`Stage::VacuumCommit`]), in crash-consistent order:
//!    **new containers → rewritten manifests → index snapshot →
//!    old-container deletes**. A crash at any operation leaves every
//!    retained session restorable: new containers without manifests are
//!    orphans (swept on reopen); a partially rewritten manifest set mixes
//!    old and new pointers while *both* copies still exist; the snapshot
//!    lands before any delete so recovery never resurrects pointers to
//!    removed containers; and old containers are unreferenced by the time
//!    they are deleted, so a missed delete is ordinary orphan/sweep-debt
//!    garbage. Rerunning vacuum after any interruption converges: the
//!    analysis starts from the cloud, and half-written rewrites are
//!    either referenced (kept) or dead (deleted).
//!
//! Liveness is keyed by fingerprint per container (the
//! [`compact_container`] contract): if the same fingerprint occupies two
//! offsets of one container (possible only on the tiny stream, which
//! skips dedup), both copies survive and both slots are relocated.

use std::collections::BTreeMap;

use aadedupe_container::{
    compact_container, decompose_id, ContainerStore, ParsedContainer, Placement,
};
use aadedupe_hashing::Fingerprint;
use aadedupe_obs::{Counter, Stage};

use crate::engine::AaDedupe;
use crate::recipe::Manifest;
use crate::restore::container_key;
use crate::scheme::BackupError;

/// Tuning knobs for one vacuum pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VacuumOptions {
    /// Rewrite containers whose live-byte ratio (live payload bytes over
    /// total payload bytes) is strictly below this threshold. `0.0`
    /// rewrites nothing on ratio grounds; `1.0` rewrites any container
    /// with at least one dead byte.
    pub ratio: f64,
    /// Additionally combine *undersized* containers — live payload below
    /// half the configured container size — when a stream has at least
    /// two of them. `false` restricts the pass to the ratio rule.
    pub combine_undersized: bool,
    /// Analyze and plan only: report what a real pass would do without
    /// touching the cloud namespace or the engine's in-memory state.
    pub dry_run: bool,
}

impl Default for VacuumOptions {
    fn default() -> Self {
        VacuumOptions { ratio: 0.5, combine_undersized: true, dry_run: false }
    }
}

/// What one vacuum pass did (or, for a dry run, would do).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VacuumReport {
    /// Containers inspected.
    pub containers_total: usize,
    /// Containers repacked into fresh ids.
    pub containers_rewritten: usize,
    /// Fresh containers produced by the rewrite.
    pub containers_created: usize,
    /// Old containers removed (rewritten sources, fully dead ones, and
    /// settled sweep debt).
    pub containers_deleted: usize,
    /// Superseded index snapshots pruned (recovery only ever reads the
    /// newest; older ones are pure garbage).
    pub snapshots_pruned: usize,
    /// Manifests whose chunk pointers were rewritten.
    pub manifests_rewritten: usize,
    /// Chunk slots repointed at new placements.
    pub relocations: usize,
    /// Stored bytes in the namespace before the pass.
    pub stored_bytes_before: u64,
    /// Stored bytes after (equal to `stored_bytes_before` on a dry run).
    pub stored_bytes_after: u64,
    /// Container bytes reclaimed: old container sizes minus rewritten
    /// sizes (estimated identically on a dry run).
    pub bytes_reclaimed: u64,
    /// Whether this was a dry run.
    pub dry_run: bool,
}

/// One container's analysis result.
struct Candidate {
    id: u64,
    parsed: ParsedContainer,
    /// Serialized size in the cloud (what a delete reclaims).
    stored_len: u64,
}

/// How the analysis classified a container.
enum Disposition {
    /// Healthy: left in place.
    Retain,
    /// No live chunk: deleted without a rewrite.
    Dead,
    /// Repacked — alone (ratio rule) or combined (undersized rule).
    Rewrite,
}

impl AaDedupe {
    /// Runs one vacuum pass over the engine's namespace. Returns the
    /// report; on a [dry run](VacuumOptions::dry_run) neither the cloud
    /// nor the engine state is touched.
    ///
    /// Fails fast on a poisoned engine (its in-memory state diverged
    /// from the cloud, so liveness computed from it is untrustworthy).
    /// A cloud failure during commit leaves every retained session
    /// restorable — see the module docs for the order-of-operations
    /// argument — and the engine's in-memory state is only mutated after
    /// the manifests (the commit point of the pass) are fully rewritten.
    pub fn vacuum(&mut self, opts: &VacuumOptions) -> Result<VacuumReport, BackupError> {
        if let Some(why) = &self.poisoned {
            return Err(BackupError::Poisoned(why.clone()));
        }
        let rec = std::sync::Arc::clone(&self.config.recorder);
        let scheme = self.config.scheme_key.clone();
        let mut report = VacuumReport {
            dry_run: opts.dry_run,
            stored_bytes_before: self.cloud.store().stored_bytes(),
            ..VacuumReport::default()
        };

        // ---- Phase 1: analyze -------------------------------------------
        let analyzing = rec.start();
        // Manifests, fetched and decoded once; rewritten in place later.
        let mut manifests: BTreeMap<u64, Manifest> = BTreeMap::new();
        for key in self.cloud.store().list(&format!("{scheme}/manifests/")) {
            let (bytes, _t) = self.cloud.get(&key)?;
            let bytes = bytes.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
            let manifest = Manifest::decode(&bytes)?;
            manifests.insert(manifest.session, manifest);
        }
        // Live fingerprints per container, from the manifests (the same
        // source of truth `open` rebuilds refcounts from).
        let mut live_fps: BTreeMap<u64, std::collections::BTreeSet<Fingerprint>> = BTreeMap::new();
        for manifest in manifests.values() {
            for f in &manifest.files {
                for c in &f.chunks {
                    live_fps.entry(c.container).or_default().insert(c.fingerprint);
                }
            }
        }
        // Every container in the namespace, parsed.
        let mut containers: BTreeMap<u64, Candidate> = BTreeMap::new();
        for key in self.cloud.store().list(&format!("{scheme}/containers/")) {
            let Some(id) = key.rsplit('/').next().and_then(|s| s.parse::<u64>().ok()) else {
                continue;
            };
            let (bytes, _t) = self.cloud.get(&key)?;
            let bytes = bytes.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
            let stored_len = bytes.len() as u64;
            let parsed = ParsedContainer::parse(&bytes)
                .map_err(|e| BackupError::Corrupt(format!("container {id:012}: {e}")))?;
            containers.insert(id, Candidate { id, parsed, stored_len });
        }
        report.containers_total = containers.len();

        // Classify. The undersized rule needs per-stream counts first.
        let empty = std::collections::BTreeSet::new();
        let live_payload = |c: &Candidate| -> u64 {
            let live = live_fps.get(&c.id).unwrap_or(&empty);
            c.parsed
                .descriptors
                .iter()
                .filter(|d| live.contains(&d.fingerprint))
                .map(|d| d.len as u64)
                .sum()
        };
        let half_size = (self.config.container_size as u64) / 2;
        let mut undersized_per_stream: BTreeMap<u32, usize> = BTreeMap::new();
        for c in containers.values() {
            let live = live_payload(c);
            if live > 0 && live < half_size {
                *undersized_per_stream.entry(decompose_id(c.id).0).or_insert(0) += 1;
            }
        }
        let mut dispositions: BTreeMap<u64, Disposition> = BTreeMap::new();
        for c in containers.values() {
            let live = live_payload(c);
            let total: u64 = c.parsed.descriptors.iter().map(|d| d.len as u64).sum();
            let below_ratio = total > 0 && (live as f64) / (total as f64) < opts.ratio;
            let combinable = opts.combine_undersized
                && live < half_size
                && undersized_per_stream.get(&decompose_id(c.id).0).copied().unwrap_or(0) >= 2;
            let disposition = if live == 0 {
                Disposition::Dead
            } else if below_ratio || combinable {
                Disposition::Rewrite
            } else {
                Disposition::Retain
            };
            dispositions.insert(c.id, disposition);
        }
        rec.record(Stage::VacuumAnalyze, analyzing);

        // ---- Phase 2: rewrite (in memory) -------------------------------
        let rewriting = rec.start();
        // Fresh ids come from the engine's own store so they stay
        // monotonic and can never collide with ids a later session mints;
        // the combine groups are packed by a scratch store that starts at
        // the same per-stream sequences.
        let mut new_containers: Vec<(u64, Vec<u8>)> = Vec::new();
        // (old container, old offset, fingerprint) -> new placement.
        let mut relocations: BTreeMap<(u64, u32, Fingerprint), Placement> = BTreeMap::new();
        let mut rewritten_ids: Vec<u64> = Vec::new();
        {
            // Group rewrite candidates per stream, in id order.
            let mut by_stream: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
            for (&id, d) in &dispositions {
                if matches!(d, Disposition::Rewrite) {
                    by_stream.entry(decompose_id(id).0).or_default().push(id);
                }
            }
            let mut packer = ContainerStore::new(self.config.container_size);
            for (&stream, ids) in &by_stream {
                // Split the stream's candidates into combine-group members
                // (undersized) and solo rewrites (ratio rule on a
                // normally-filled container).
                let mut solo: Vec<u64> = Vec::new();
                let mut group: Vec<u64> = Vec::new();
                for &id in ids {
                    // aalint: allow(panic-path) -- undersized ids were collected from containers' own keys
                    let c = &containers[&id];
                    if opts.combine_undersized
                        && live_payload(c) < half_size
                        && undersized_per_stream.get(&stream).copied().unwrap_or(0) >= 2
                    {
                        group.push(id);
                    } else {
                        solo.push(id);
                    }
                }
                for id in solo {
                    // aalint: allow(panic-path) -- solo ids were collected from containers' own keys
                    let c = &containers[&id];
                    let live = live_fps.get(&id).unwrap_or(&empty);
                    let new_id = self.containers.mint_container_id(stream);
                    let Some((bytes, moves)) = compact_container(
                        &c.parsed,
                        &|fp| live.contains(fp),
                        new_id,
                        self.config.container_size,
                    ) else {
                        continue; // unreachable: Rewrite implies live > 0
                    };
                    // `moves` is in survivor order — zip with the original
                    // surviving descriptors to map old offsets exactly,
                    // even when one fingerprint occupies two offsets.
                    let survivors =
                        c.parsed.descriptors.iter().filter(|d| live.contains(&d.fingerprint));
                    for (d, (fp, placement)) in survivors.zip(&moves) {
                        debug_assert_eq!(d.fingerprint, *fp);
                        relocations.insert((id, d.offset, d.fingerprint), *placement);
                    }
                    new_containers.push((new_id, bytes));
                    rewritten_ids.push(id);
                }
                // Combine group: append survivors through the scratch
                // packer, which rolls at container_size — ids minted from
                // the engine store to keep one monotonic sequence.
                if !group.is_empty() {
                    for &id in &group {
                        // aalint: allow(panic-path) -- group ids were collected from containers' own keys
                        let c = &containers[&id];
                        let live = live_fps.get(&id).unwrap_or(&empty);
                        for d in &c.parsed.descriptors {
                            if !live.contains(&d.fingerprint) {
                                continue;
                            }
                            // Mirror the engine store's sequence into the
                            // scratch packer just-in-time: mint from the
                            // engine, then force the packer onto that id.
                            let next = self.containers.mint_container_id(stream);
                            let (s, seq) = decompose_id(next);
                            packer.resume_stream_ids(s, seq);
                            let placement =
                                packer.add_chunk(stream, d.fingerprint, c.parsed.chunk_bytes(d));
                            // Minting per chunk over-advances the engine
                            // sequence (gaps are harmless; reuse never
                            // happens), but the packer only *opens* a new
                            // container when rolling, so re-sync below.
                            relocations.insert((id, d.offset, d.fingerprint), placement);
                        }
                        rewritten_ids.push(id);
                    }
                    packer.seal_stream(stream);
                }
            }
            for sealed in packer.drain_sealed() {
                new_containers.push((sealed.id, sealed.bytes));
            }
            new_containers.sort_by_key(|(id, _)| *id);
        }
        rewritten_ids.sort_unstable();
        report.containers_rewritten = rewritten_ids.len();
        report.containers_created = new_containers.len();
        report.relocations = relocations.len();

        // Rewrite manifests in memory, remembering which changed.
        let mut dirty_manifests: Vec<u64> = Vec::new();
        for (session, manifest) in &mut manifests {
            let mut changed = false;
            for f in &mut manifest.files {
                for c in &mut f.chunks {
                    if let Some(p) = relocations.get(&(c.container, c.offset, c.fingerprint)) {
                        c.container = p.container;
                        c.offset = p.offset;
                        changed = true;
                    }
                }
            }
            if changed {
                dirty_manifests.push(*session);
            }
        }
        report.manifests_rewritten = dirty_manifests.len();

        // Old containers to delete: rewritten sources, fully dead ones,
        // and any outstanding sweep debt (its objects may already be gone;
        // missing keys delete as no-ops).
        let mut doomed: Vec<u64> = rewritten_ids.clone();
        for (&id, d) in &dispositions {
            if matches!(d, Disposition::Dead) {
                doomed.push(id);
            }
        }
        let mut debt = self.sweep_debt.clone();
        // aalint: allow(panic-path) -- dispositions holds every container id; the && short-circuits absent ones
        debt.retain(|id| !containers.contains_key(id) || matches!(dispositions[id], Disposition::Retain));
        doomed.extend(debt);
        doomed.sort_unstable();
        doomed.dedup();
        let reclaimable: u64 = doomed
            .iter()
            .filter_map(|id| containers.get(id).map(|c| c.stored_len))
            .sum();
        let new_bytes: u64 = new_containers.iter().map(|(_, b)| b.len() as u64).sum();
        report.bytes_reclaimed = reclaimable.saturating_sub(new_bytes);
        rec.record(Stage::VacuumRewrite, rewriting);

        if opts.dry_run {
            report.containers_deleted = doomed.len();
            report.stored_bytes_after = report.stored_bytes_before;
            return Ok(report);
        }

        // ---- Phase 3: commit --------------------------------------------
        // Order: new containers -> rewritten manifests -> index snapshot
        // -> old-container deletes. See the module docs for why a crash
        // at any operation leaves every retained session restorable.
        let committing = rec.start();
        let mut retry_budget = self.config.retry.session_retry_budget;
        let mut op_seq = 0u64;
        for (id, bytes) in &new_containers {
            op_seq += 1;
            rec.count(Counter::UploadBytes, bytes.len() as u64);
            rec.count(Counter::UploadObjects, 1);
            // A failure here leaves only orphan containers (no manifest
            // references them yet) and no in-memory mutation: the engine
            // remains fully usable and a rerun converges.
            self.put_with_retry(&container_key(&scheme, *id), bytes, &mut retry_budget, op_seq)?;
        }
        for session in &dirty_manifests {
            // aalint: allow(panic-path) -- dirty_manifests holds keys of manifests by construction
            let manifest = &manifests[session];
            let bytes = manifest.encode();
            op_seq += 1;
            rec.count(Counter::UploadBytes, bytes.len() as u64);
            rec.count(Counter::UploadObjects, 1);
            // A failure mid-way mixes old and new pointers across
            // manifests; both container generations still exist, so every
            // session stays restorable and in-memory state is untouched.
            self.put_with_retry(&Manifest::key(&scheme, *session), &bytes, &mut retry_budget, op_seq)?;
        }

        // Manifests are fully rewritten — the pass is committed. Apply the
        // relocation map to the in-memory state (infallible) before any
        // operation that can still fail.
        self.apply_relocations(&manifests, &relocations);

        // Fresh index snapshot, keyed like a session snapshot so recovery
        // picks it up as the latest. A failure here is reported but the
        // pass is committed; recovery reconciles against the manifests
        // anyway, and the old containers survive until the next pass.
        let snap = aadedupe_index::codec::encode_app_aware(&self.index);
        op_seq += 1;
        rec.count(Counter::UploadBytes, snap.len() as u64);
        rec.count(Counter::UploadObjects, 1);
        let skey = format!("{scheme}/index/{:08}", self.sessions);
        if let Err(e) = self.put_with_retry(&skey, &snap, &mut retry_budget, op_seq) {
            rec.record(Stage::VacuumCommit, committing);
            return Err(BackupError::Cloud(format!(
                "vacuum committed, but index snapshot upload failed: {e}"
            )));
        }

        // Old containers are unreferenced now; deletes are best-effort
        // garbage collection, with failures parked as sweep debt exactly
        // like `delete_session`.
        self.sweep_debt.clear();
        let mut deleted = 0usize;
        for id in doomed {
            if self.cloud.delete(&container_key(&scheme, id)).is_err() {
                self.sweep_debt.push(id);
            } else {
                deleted += 1;
            }
        }
        report.containers_deleted = deleted;
        // Superseded index snapshots: the fresh one is durable, recovery
        // always reads the newest key, so every older snapshot is garbage.
        // Best-effort like the container deletes — a missed one is pruned
        // by the next pass.
        let mut snaps = self.cloud.store().list(&format!("{scheme}/index/"));
        snaps.sort_unstable();
        for key in &snaps {
            if *key == skey {
                continue;
            }
            match self.cloud.delete(key) {
                Ok(true) => report.snapshots_pruned += 1,
                // A missed or failed snapshot delete is pruned by the
                // next pass; unlike containers there is no debt list.
                Ok(false) | Err(_) => {}
            }
        }
        rec.record(Stage::VacuumCommit, committing);

        rec.count(Counter::ContainersRewritten, report.containers_rewritten as u64);
        rec.count(Counter::BytesReclaimed, report.bytes_reclaimed);
        report.stored_bytes_after = self.cloud.store().stored_bytes();
        Ok(report)
    }

    /// Applies the relocation map to the in-memory GC state: index
    /// placements (per-app, refcounts preserved), the tiny-file cache,
    /// and the per-container refcounts. Infallible; called only after the
    /// rewritten manifests — the pass's commit point — are durable.
    fn apply_relocations(
        &mut self,
        manifests: &BTreeMap<u64, Manifest>,
        relocations: &BTreeMap<(u64, u32, Fingerprint), Placement>,
    ) {
        // Index entries hold one placement per (app, fingerprint); the
        // rewritten manifests carry the new placement for every live
        // chunk, so walking them repoints exactly the moved entries.
        for manifest in manifests.values() {
            for f in &manifest.files {
                if f.tiny {
                    continue;
                }
                for c in &f.chunks {
                    self.index.update_placement(f.app, &c.fingerprint, c.container, c.offset);
                }
            }
        }
        // Tiny-file carry-forward references must follow their chunks or
        // the next unchanged tiny file would reference a deleted
        // container.
        let mut paths: Vec<String> = self.tiny_seen.keys().cloned().collect();
        paths.sort_unstable();
        for path in paths {
            if let Some((_token, reference)) = self.tiny_seen.get_mut(&path) {
                if let Some(p) =
                    relocations.get(&(reference.container, reference.offset, reference.fingerprint))
                {
                    reference.container = p.container;
                    reference.offset = p.offset;
                }
            }
        }
        // Refcounts: recompute from the rewritten manifests (the exact
        // fold `open` performs).
        let mut container_live: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for manifest in manifests.values() {
            for f in &manifest.files {
                for c in &f.chunks {
                    *container_live.entry(c.container).or_insert(0) += 1;
                }
            }
        }
        self.container_live = container_live;
    }
}
