//! The AA-Dedupe backup engine.
//!
//! Faithful to the paper's Fig. 5 dataflow: a file size filter diverts
//! tiny files straight into containers; the intelligent chunker picks
//! WFC/SC/CDC per application category; the deduplicator consults the
//! application-aware index (one partition per application, each with a
//! RAM-resident working set); new chunks are aggregated into 1 MiB
//! containers per application stream; manifests and periodic index
//! snapshots complete the cloud state. Chunking and fingerprinting can be
//! fanned out to worker threads (the paper's "pipelined design").

use std::collections::HashMap;
use std::time::Instant;

use aadedupe_chunking::{CdcChunker, CdcParams, Chunker, ChunkingMethod, ScChunker, DEFAULT_CDC};
use aadedupe_cloud::CloudSim;
use aadedupe_container::{ContainerStore, DEFAULT_CONTAINER_SIZE};
use aadedupe_filetype::{AppType, DedupPolicy, SourceFile};
use aadedupe_hashing::Fingerprint;
use aadedupe_index::{codec, AppAwareIndex, ChunkEntry};
use aadedupe_metrics::SessionReport;

use crate::recipe::{ChunkRef, FileRecipe, Manifest};
use crate::restore::{container_key, restore_session, RestoredFile};
use crate::scheme::{BackupError, BackupScheme};
use crate::timing::DedupClock;

/// Engine configuration. Defaults are the paper's evaluation settings.
#[derive(Debug, Clone)]
pub struct AaDedupeConfig {
    /// Files strictly below this size bypass dedup (paper: 10 KiB).
    pub tiny_threshold: u64,
    /// Fixed container size (paper: 1 MiB).
    pub container_size: usize,
    /// Static chunk size (paper: 8 KiB).
    pub sc_chunk_size: usize,
    /// CDC parameters (paper: 2/8/16 KiB, 48-byte window).
    pub cdc: CdcParams,
    /// Chunking/hash policy per category (paper: Fig. 6).
    pub policy: DedupPolicy,
    /// Modelled RAM cache entries per index partition.
    pub ram_entries_per_partition: usize,
    /// Upload an index snapshot every N sessions (0 disables sync).
    pub index_sync_interval: usize,
    /// Worker threads for chunk+hash (1 = serial).
    pub chunk_workers: usize,
    /// Cloud namespace prefix for this engine's objects.
    pub scheme_key: String,
}

impl Default for AaDedupeConfig {
    fn default() -> Self {
        AaDedupeConfig {
            tiny_threshold: 10 * 1024,
            container_size: DEFAULT_CONTAINER_SIZE,
            sc_chunk_size: 8 * 1024,
            cdc: DEFAULT_CDC,
            policy: DedupPolicy::aa_dedupe(),
            ram_entries_per_partition: 1 << 18,
            index_sync_interval: 1,
            chunk_workers: 1,
            scheme_key: "aa-dedupe".into(),
        }
    }
}

/// Stream id used for the tiny-file container stream; application streams
/// use the application tag (1..=13).
const TINY_STREAM: u32 = 0;

/// The AA-Dedupe backup client.
pub struct AaDedupe {
    config: AaDedupeConfig,
    cloud: CloudSim,
    index: AppAwareIndex,
    containers: ContainerStore,
    sessions: usize,
    /// Live-chunk count per container (deletion support: a container whose
    /// count reaches zero is removed from the cloud).
    container_live: HashMap<u64, u64>,
    /// Tiny-file incrementality: path -> (change token, last placement).
    /// Tiny files bypass the chunk *index* (the paper's size filter), but
    /// the client still skips re-packing unchanged ones, Cumulus-style.
    /// Not persisted: after [`AaDedupe::open`] the first session re-packs
    /// tiny files once.
    tiny_seen: HashMap<String, (u64, ChunkRef)>,
    wfc: aadedupe_chunking::WfcChunker,
    sc: ScChunker,
    cdc: CdcChunker,
}

/// The result of chunk+hash over one file.
struct ChunkedFile {
    /// (fingerprint, chunk bytes) in file order.
    chunks: Vec<(Fingerprint, Vec<u8>)>,
    /// CPU time spent producing them.
    cpu: std::time::Duration,
}

impl AaDedupe {
    /// Engine with the paper's default configuration.
    pub fn new(cloud: CloudSim) -> Self {
        Self::with_config(cloud, AaDedupeConfig::default())
    }

    /// Engine with an explicit configuration.
    pub fn with_config(cloud: CloudSim, config: AaDedupeConfig) -> Self {
        AaDedupe {
            index: AppAwareIndex::new(config.ram_entries_per_partition),
            containers: ContainerStore::new(config.container_size),
            sessions: 0,
            container_live: HashMap::new(),
            tiny_seen: HashMap::new(),
            wfc: aadedupe_chunking::WfcChunker::new(),
            sc: ScChunker::new(config.sc_chunk_size),
            cdc: CdcChunker::new(config.cdc),
            cloud,
            config,
        }
    }

    /// Opens an engine over an *existing* cloud namespace, resuming its
    /// state: the session counter continues after the last stored
    /// manifest, and the index and per-container reference counts are
    /// rebuilt from the manifests themselves (exact, snapshot-independent).
    /// A fresh namespace yields a fresh engine.
    pub fn open(cloud: CloudSim, config: AaDedupeConfig) -> Result<Self, BackupError> {
        let mut engine = Self::with_config(cloud, config);
        let prefix = format!("{}/manifests/", engine.config.scheme_key);
        let manifest_keys = engine.cloud.store().list(&prefix);
        let mut max_session: Option<u64> = None;
        for key in &manifest_keys {
            let (bytes, _t) = engine.cloud.get(key);
            let bytes = bytes.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
            let manifest = Manifest::decode(&bytes)?;
            max_session = Some(max_session.map_or(manifest.session, |m| m.max(manifest.session)));
            for f in &manifest.files {
                for c in &f.chunks {
                    *engine.container_live.entry(c.container).or_insert(0) += 1;
                    if !f.tiny {
                        engine.index.partition(f.app).bump_or_insert(
                            c.fingerprint,
                            ChunkEntry::new(c.len as u64, c.container, c.offset),
                        );
                    }
                }
            }
        }
        engine.sessions = max_session.map_or(0, |m| m as usize + 1);
        engine.resume_container_ids();
        Ok(engine)
    }

    /// Advances the container id counter past every container object in
    /// the cloud namespace, so resumed engines never clobber live
    /// containers.
    fn resume_container_ids(&mut self) {
        let prefix = format!("{}/containers/", self.config.scheme_key);
        let max_id = self
            .cloud
            .store()
            .list(&prefix)
            .iter()
            .filter_map(|k| k.rsplit('/').next()?.parse::<u64>().ok())
            .max();
        if let Some(id) = max_id {
            self.containers.resume_ids_from(id + 1);
        }
    }

    /// Sessions currently restorable from the cloud (ascending).
    pub fn list_sessions(&self) -> Vec<usize> {
        let prefix = format!("{}/manifests/", self.config.scheme_key);
        self.cloud
            .store()
            .list(&prefix)
            .iter()
            .filter_map(|k| k.rsplit('/').next()?.parse::<usize>().ok())
            .collect()
    }

    /// Restores a single file by path from a past session.
    pub fn restore_file(&self, session: usize, path: &str) -> Result<RestoredFile, BackupError> {
        let files = self.restore_session(session)?;
        files
            .into_iter()
            .find(|f| f.path == path)
            .ok_or_else(|| BackupError::MissingObject(format!("session {session}: {path}")))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AaDedupeConfig {
        &self.config
    }

    /// The cloud this engine talks to.
    pub fn cloud(&self) -> &CloudSim {
        &self.cloud
    }

    /// The application-aware index (inspection).
    pub fn index(&self) -> &AppAwareIndex {
        &self.index
    }

    /// Chunk + fingerprint one file's bytes according to the policy.
    fn chunk_and_hash(&self, app: AppType, data: &[u8]) -> ChunkedFile {
        let start = Instant::now();
        let (method, hash) = self.config.policy.for_app(app);
        let spans = match method {
            ChunkingMethod::Wfc => self.wfc.chunk(data),
            ChunkingMethod::Sc => self.sc.chunk(data),
            ChunkingMethod::Cdc => self.cdc.chunk(data),
        };
        let chunks = spans
            .iter()
            .map(|s| {
                let bytes = s.slice(data);
                (Fingerprint::compute(hash, bytes), bytes.to_vec())
            })
            .collect();
        ChunkedFile { chunks, cpu: start.elapsed() }
    }

    /// Deduplicate one chunked file into recipes/containers/index.
    /// Returns the recipe and updates the report counters.
    fn dedupe_file(
        &mut self,
        file: &dyn SourceFile,
        chunked: ChunkedFile,
        clock: &mut DedupClock,
        report: &mut SessionReport,
    ) -> FileRecipe {
        let app = file.app_type();
        let stream = app.tag() as u32;
        let mut recipe = FileRecipe {
            path: file.path().to_string(),
            app,
            tiny: false,
            chunks: Vec::with_capacity(chunked.chunks.len()),
        };
        clock.add_cpu(chunked.cpu);
        for (fp, bytes) in chunked.chunks {
            report.chunks_total += 1;
            let start = Instant::now();
            let outcome = self.index.lookup_classified(app, &fp);
            if outcome.touched_disk() {
                clock.charge_disk_probes(1);
                report.index_disk_reads += 1;
            }
            let reference = match outcome.entry() {
                Some(entry) => {
                    report.chunks_duplicate += 1;
                    *self.container_live.entry(entry.container).or_insert(0) += 1;
                    ChunkRef {
                        fingerprint: fp,
                        len: bytes.len() as u32,
                        container: entry.container,
                        offset: entry.offset,
                    }
                }
                None => {
                    let placement = self.containers.add_chunk(stream, fp, &bytes);
                    self.index.insert(
                        app,
                        fp,
                        ChunkEntry::new(bytes.len() as u64, placement.container, placement.offset),
                    );
                    *self.container_live.entry(placement.container).or_insert(0) += 1;
                    report.stored_bytes += bytes.len() as u64;
                    ChunkRef {
                        fingerprint: fp,
                        len: bytes.len() as u32,
                        container: placement.container,
                        offset: placement.offset,
                    }
                }
            };
            clock.add_cpu(start.elapsed());
            recipe.chunks.push(reference);
        }
        recipe
    }

    /// The tiny-file path: no chunk-level dedup (the size filter), but
    /// unchanged files (same change token) are carried forward by
    /// reference instead of re-packed -- the Cumulus-style grouping the
    /// paper cites for its tiny-file handling.
    fn pack_tiny(
        &mut self,
        file: &dyn SourceFile,
        clock: &mut DedupClock,
        report: &mut SessionReport,
    ) -> FileRecipe {
        report.files_tiny += 1;
        report.chunks_total += 1;
        let token = file.change_token();
        if let Some((seen_token, reference)) = self.tiny_seen.get(file.path()) {
            if *seen_token == token {
                report.chunks_duplicate += 1;
                let reference = *reference;
                *self.container_live.entry(reference.container).or_insert(0) += 1;
                return FileRecipe {
                    path: file.path().to_string(),
                    app: file.app_type(),
                    tiny: true,
                    chunks: vec![reference],
                };
            }
        }
        let data = file.read();
        let start = Instant::now();
        // Tiny files are fingerprinted only for restore-time integrity
        // (container descriptors need a key); they are not indexed.
        let fp = Fingerprint::compute(aadedupe_hashing::HashAlgorithm::Sha1, &data);
        let placement = self.containers.add_chunk(TINY_STREAM, fp, &data);
        *self.container_live.entry(placement.container).or_insert(0) += 1;
        report.stored_bytes += data.len() as u64;
        clock.add_cpu(start.elapsed());
        let reference = ChunkRef {
            fingerprint: fp,
            len: data.len() as u32,
            container: placement.container,
            offset: placement.offset,
        };
        self.tiny_seen.insert(file.path().to_string(), (token, reference));
        FileRecipe {
            path: file.path().to_string(),
            app: file.app_type(),
            tiny: true,
            chunks: vec![reference],
        }
    }

    /// Chunk+hash stage, fanned out to `chunk_workers` threads when
    /// configured. Results are consumed in file order regardless of
    /// completion order, so dedup outcomes are deterministic.
    fn run_session(
        &mut self,
        files: &[&dyn SourceFile],
        report: &mut SessionReport,
        clock: &mut DedupClock,
    ) -> Manifest {
        let mut manifest = Manifest::new(self.sessions as u64);
        let tiny_threshold = self.config.tiny_threshold;
        let workers = self.config.chunk_workers.max(1);

        // Indices of non-tiny files, to be chunked (possibly in parallel).
        let big: Vec<usize> = (0..files.len())
            .filter(|&i| files[i].size() >= tiny_threshold)
            .collect();

        let mut chunked: HashMap<usize, ChunkedFile> = HashMap::with_capacity(big.len());
        if workers <= 1 {
            for &i in &big {
                let data = files[i].read();
                let cf = self.chunk_and_hash(files[i].app_type(), &data);
                chunked.insert(i, cf);
            }
        } else {
            // Fan out chunk+hash; crossbeam channels keep memory bounded.
            let (job_tx, job_rx) = crossbeam::channel::bounded::<usize>(workers * 2);
            let (res_tx, res_rx) =
                crossbeam::channel::bounded::<(usize, ChunkedFile)>(workers * 2);
            let this: &AaDedupe = self;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    scope.spawn(move || {
                        while let Ok(i) = job_rx.recv() {
                            let data = files[i].read();
                            let cf = this.chunk_and_hash(files[i].app_type(), &data);
                            if res_tx.send((i, cf)).is_err() {
                                return;
                            }
                        }
                    });
                }
                drop(res_tx);
                let feeder = scope.spawn(move || {
                    for &i in &big {
                        if job_tx.send(i).is_err() {
                            return;
                        }
                    }
                });
                for (i, cf) in res_rx.iter() {
                    chunked.insert(i, cf);
                }
                feeder.join().expect("feeder panicked");
            });
        }

        // Consume in file order (dedup outcome must not depend on worker
        // scheduling).
        for (i, file) in files.iter().enumerate() {
            report.files_total += 1;
            report.logical_bytes += file.size();
            let recipe = if file.size() < tiny_threshold {
                self.pack_tiny(*file, clock, report)
            } else {
                let cf = chunked.remove(&i).expect("chunked above");
                self.dedupe_file(*file, cf, clock, report)
            };
            manifest.files.push(recipe);
        }
        manifest
    }

    /// Marks every chunk of a manifest released, deleting containers whose
    /// last live chunk disappears (the background deletion process of
    /// §III.F). Tiny-file chunks are unindexed, so their container slots
    /// are released directly.
    fn release_manifest(&mut self, manifest: &Manifest) {
        for f in &manifest.files {
            for c in &f.chunks {
                if !f.tiny {
                    // Tiny chunks are unindexed; indexed chunks drop one
                    // reference (removed from the index at zero).
                    self.index.release(f.app, &c.fingerprint);
                }
                let live = self
                    .container_live
                    .get_mut(&c.container)
                    .expect("container of a live manifest");
                *live = live.saturating_sub(1);
                if *live == 0 {
                    self.container_live.remove(&c.container);
                    self.cloud.delete(&container_key(&self.config.scheme_key, c.container));
                }
            }
        }
    }

    /// Deletes a past session: removes its manifest and reclaims any
    /// containers left without live references.
    pub fn delete_session(&mut self, session: usize) -> Result<(), BackupError> {
        let key = Manifest::key(&self.config.scheme_key, session as u64);
        let (bytes, _t) = self.cloud.get(&key);
        let bytes = bytes.ok_or(BackupError::UnknownSession(session))?;
        let manifest = Manifest::decode(&bytes)?;
        self.release_manifest(&manifest);
        self.cloud.delete(&key);
        Ok(())
    }

    /// Rebuilds the in-memory index from the latest cloud snapshot — the
    /// disaster-recovery path the paper's periodic synchronisation enables.
    pub fn recover_index_from_cloud(&mut self) -> Result<(), BackupError> {
        let keys = self.cloud.store().list(&format!("{}/index/", self.config.scheme_key));
        let latest = keys.last().ok_or_else(|| {
            BackupError::MissingObject(format!("{}/index/*", self.config.scheme_key))
        })?;
        let (bytes, _t) = self.cloud.get(latest);
        let bytes = bytes.ok_or_else(|| BackupError::MissingObject(latest.clone()))?;
        self.index = codec::decode_app_aware(&bytes, self.config.ram_entries_per_partition)
            .map_err(|e| BackupError::Corrupt(format!("index snapshot: {e}")))?;
        self.resume_container_ids();
        Ok(())
    }
}

impl BackupScheme for AaDedupe {
    fn name(&self) -> &'static str {
        "AA-Dedupe"
    }

    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError> {
        let mut report = SessionReport::new(self.name(), self.sessions);
        let mut clock = DedupClock::new();
        let wan_before = self.cloud.elapsed();
        let puts_before = self.cloud.store().stats();

        let manifest = self.run_session(files, &mut report, &mut clock);
        // Every byte of the dataset is read once from the source disk.
        clock.charge_source_read(report.logical_bytes);

        // Ship containers.
        self.containers.seal_all();
        for sealed in self.containers.drain_sealed() {
            let key = container_key(&self.config.scheme_key, sealed.id);
            report.transferred_bytes += sealed.bytes.len() as u64;
            self.cloud.put(&key, sealed.bytes);
        }
        // Ship the manifest.
        let mbytes = manifest.encode();
        report.transferred_bytes += mbytes.len() as u64;
        self.cloud.put(&Manifest::key(&self.config.scheme_key, manifest.session), mbytes);
        // Periodic index synchronisation.
        if self.config.index_sync_interval > 0
            && (self.sessions + 1) % self.config.index_sync_interval == 0
        {
            let snap = codec::encode_app_aware(&self.index);
            report.transferred_bytes += snap.len() as u64;
            self.cloud.put(
                &format!("{}/index/{:08}", self.config.scheme_key, self.sessions),
                snap,
            );
        }

        let put_delta = self.cloud.store().stats().put_requests - puts_before.put_requests;
        report.put_requests = put_delta;
        report.dedup_cpu = clock.total();
        report.transfer_time = self.cloud.elapsed() - wan_before;
        self.sessions += 1;
        Ok(report)
    }

    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session(&self.cloud, &self.config.scheme_key, session as u64)
    }

    fn sessions_completed(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::MemoryFile;

    fn mem(path: &str, data: Vec<u8>) -> MemoryFile {
        MemoryFile::new(path, data)
    }

    fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
        files.iter().map(|f| f as &dyn SourceFile).collect()
    }

    fn engine() -> AaDedupe {
        AaDedupe::new(CloudSim::with_paper_defaults())
    }

    #[test]
    fn backup_and_restore_round_trip() {
        let mut e = engine();
        let files = vec![
            mem("user/doc/a.doc", b"document text ".repeat(3000)), // dynamic
            mem("user/pdf/b.pdf", vec![7u8; 50_000]),              // static
            mem("user/mp3/c.mp3", (0..60_000u32).map(|i| (i % 251) as u8).collect()), // compressed
            mem("user/tiny/t.txt", b"tiny".to_vec()),              // tiny
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(report.files_total, 4);
        assert_eq!(report.files_tiny, 1);
        assert!(report.logical_bytes > 0);
        assert!(report.transferred_bytes > 0);

        let restored = e.restore_session(0).unwrap();
        assert_eq!(restored.len(), 4);
        for (orig, rest) in files.iter().zip(restored.iter()) {
            assert_eq!(orig.path, rest.path);
            assert_eq!(orig.data, rest.data, "{}", orig.path);
        }
    }

    #[test]
    fn second_identical_session_dedupes_everything() {
        let mut e = engine();
        let files = vec![
            mem("user/doc/a.doc", b"words and words ".repeat(4000)),
            mem("user/exe/b.exe", vec![3u8; 100_000]),
        ];
        let s0 = e.backup_session(&sources(&files)).unwrap();
        let s1 = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(s1.stored_bytes, 0, "identical data stores nothing new");
        assert!(s1.chunks_duplicate >= s0.chunks_total - 1);
        assert!(s1.transferred_bytes < s0.transferred_bytes / 2);
        // Both sessions restore correctly.
        for session in 0..2 {
            let restored = e.restore_session(session).unwrap();
            assert_eq!(restored[0].data, files[0].data);
            assert_eq!(restored[1].data, files[1].data);
        }
    }

    #[test]
    fn policy_routes_by_category() {
        let mut e = engine();
        // A compressed file large enough that SC would make many chunks,
        // but WFC must make exactly one.
        let media = mem("user/avi/m.avi", vec![9u8; 200_000]);
        let report = e.backup_session(&sources(&[media.clone()])).unwrap();
        assert_eq!(report.chunks_total, 1, "WFC yields one chunk per file");
        // A static file gets 8 KiB fixed chunks.
        let mut e2 = engine();
        let stat = mem("user/pdf/s.pdf", vec![1u8; 80_000]);
        let r2 = e2.backup_session(&sources(&[stat])).unwrap();
        assert_eq!(r2.chunks_total, 80_000 / 8192 + 1);
    }

    #[test]
    fn tiny_files_bypass_dedup() {
        let mut e = engine();
        // Two identical tiny files: no dedup on the tiny path.
        let files = vec![
            mem("user/tiny/a.txt", b"same tiny content".to_vec()),
            mem("user/tiny/b.txt", b"same tiny content".to_vec()),
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(report.files_tiny, 2);
        assert_eq!(report.chunks_duplicate, 0);
        assert_eq!(report.stored_bytes, 2 * 17);
        // Restore still works.
        let restored = e.restore_session(0).unwrap();
        assert_eq!(restored[0].data, restored[1].data);
    }

    #[test]
    fn intra_session_duplicate_files_dedup() {
        let mut e = engine();
        let payload = vec![0xabu8; 64_000];
        let files = vec![
            mem("user/pdf/one.pdf", payload.clone()),
            mem("user/pdf/two.pdf", payload.clone()),
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert!(report.chunks_duplicate >= report.chunks_total / 2 - 1);
        assert!(report.stored_bytes <= payload.len() as u64 + 8192);
    }

    #[test]
    fn cross_app_identical_content_is_not_shared() {
        // Observation 2's corollary: identical bytes under different app
        // types live in different partitions and are stored twice.
        let mut e = engine();
        // Non-repeating payload so no *intra-file* chunks collide.
        let payload: Vec<u8> = {
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            (0..40_000).map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x >> 32) as u8 }).collect()
        };
        let files = vec![
            mem("user/pdf/a.pdf", payload.clone()),
            mem("user/exe/b.exe", payload.clone()),
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(report.chunks_duplicate, 0);
        assert_eq!(report.stored_bytes, 2 * payload.len() as u64);
    }

    #[test]
    fn parallel_workers_match_serial_results() {
        let files: Vec<MemoryFile> = (0..12)
            .map(|i| {
                mem(
                    &format!("user/txt/f{i}.txt"),
                    format!("file number {i} ").repeat(2000 + i * 37).into_bytes(),
                )
            })
            .collect();
        let mut serial = engine();
        let mut cfg = AaDedupeConfig::default();
        cfg.chunk_workers = 4;
        let mut parallel = AaDedupe::with_config(CloudSim::with_paper_defaults(), cfg);

        let rs = serial.backup_session(&sources(&files)).unwrap();
        let rp = parallel.backup_session(&sources(&files)).unwrap();
        assert_eq!(rs.stored_bytes, rp.stored_bytes);
        assert_eq!(rs.chunks_total, rp.chunks_total);
        assert_eq!(rs.chunks_duplicate, rp.chunks_duplicate);
        // Bit-exact restores from both.
        let a = serial.restore_session(0).unwrap();
        let b = parallel.restore_session(0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delete_session_reclaims_fully_dead_containers() {
        let mut e = engine();
        let files0 = vec![mem("user/doc/x.doc", b"version one ".repeat(3000))];
        e.backup_session(&sources(&files0)).unwrap();
        let objects_after_0 = e.cloud().store().object_count();
        // Session 1 with completely different content.
        let files1 = vec![mem("user/doc/y.doc", b"other stuff ".repeat(3000))];
        e.backup_session(&sources(&files1)).unwrap();

        e.delete_session(0).unwrap();
        // Session 0's manifest is gone and its containers reclaimed.
        assert!(e.restore_session(0).is_err());
        let restored = e.restore_session(1).unwrap();
        assert_eq!(restored[0].data, files1[0].data);
        assert!(e.cloud().store().object_count() < objects_after_0 + 4);
    }

    #[test]
    fn delete_preserves_shared_chunks() {
        let mut e = engine();
        let shared = mem("user/doc/s.doc", b"shared bytes ".repeat(4000));
        e.backup_session(&sources(&[shared.clone()])).unwrap();
        e.backup_session(&sources(&[shared.clone()])).unwrap();
        e.delete_session(0).unwrap();
        // Session 1 references the same chunks; they must survive.
        let restored = e.restore_session(1).unwrap();
        assert_eq!(restored[0].data, shared.data);
    }

    #[test]
    fn index_recovery_from_cloud_snapshot() {
        let mut e = engine();
        let files = vec![mem("user/ppt/p.ppt", b"slide deck ".repeat(5000))];
        e.backup_session(&sources(&files)).unwrap();
        let entries_before = e.index().len();
        assert!(entries_before > 0);
        // Simulate client disk loss.
        e.index = AppAwareIndex::new(e.config.ram_entries_per_partition);
        assert_eq!(e.index().len(), 0);
        e.recover_index_from_cloud().unwrap();
        assert_eq!(e.index().len(), entries_before);
        // Recovered index actually dedupes.
        let r = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(r.stored_bytes, 0);
    }

    #[test]
    fn report_counters_are_consistent() {
        let mut e = engine();
        let files = vec![
            mem("user/txt/a.txt", b"alpha ".repeat(5000)),
            mem("user/tiny/t.txt", b"x".to_vec()),
        ];
        let r = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(r.files_total, 2);
        assert!(r.chunks_duplicate <= r.chunks_total);
        assert!(r.stored_bytes <= r.logical_bytes);
        assert!(r.dr() >= 1.0);
        assert!(r.dedup_cpu > std::time::Duration::ZERO);
        assert!(r.put_requests > 0);
    }
}
