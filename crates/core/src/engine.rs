//! The AA-Dedupe backup engine.
//!
//! Faithful to the paper's Fig. 5 dataflow: a file size filter diverts
//! tiny files straight into containers; the intelligent chunker picks
//! WFC/SC/CDC per application category; the deduplicator consults the
//! application-aware index (one partition per application, each with a
//! RAM-resident working set); new chunks are aggregated into 1 MiB
//! containers per application stream; manifests and periodic index
//! snapshots complete the cloud state.
//!
//! # Parallel pipeline
//!
//! With [`PipelineConfig::workers`] > 1 a session runs as a multi-stage
//! pipeline built purely on `std::thread` + `std::sync::mpsc`:
//!
//! ```text
//!          jobs                 per-app shards            append requests
//! main ──────────▶ workers ──────────────────▶ dedup ──────────────────▶ appender
//!  │    (bounded)  read+classify  (bounded,     shards   (reply channel)  (owns the
//!  │               chunk+hash      one per app)   │                       ContainerStore)
//!  │                                              │ outcomes
//!  └───────────── tiny files (file order) ────────┴──▶ merge (file order)
//! ```
//!
//! Determinism contract: the output (containers, manifests, index,
//! report counters) is *identical* to a serial run for a fixed file
//! ordering, because
//!
//! 1. container ids are per-stream
//!    ([`compose_id`](aadedupe_container::compose_id)), so a stream's
//!    container layout depends only on that stream's own append sequence;
//! 2. each application's chunks are deduplicated by exactly one shard
//!    thread, which processes its files in file order (a reorder buffer
//!    absorbs out-of-order worker completions), so every stream's append
//!    sequence — and every partition's lookup/insert sequence — matches
//!    the serial one;
//! 3. tiny files are packed by the main thread in file order, feeding the
//!    tiny stream the exact serial sequence;
//! 4. a single appender thread owns the [`ContainerStore`], serving
//!    placement requests; per-producer mpsc FIFO keeps each stream's
//!    arrivals in its shard's send order.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use aadedupe_chunking::{CdcParams, StreamChunker, DEFAULT_CDC};
use aadedupe_cloud::CloudSim;
use aadedupe_container::{decompose_id, ContainerStore, Placement, DEFAULT_CONTAINER_SIZE};
use aadedupe_filetype::{AppType, DedupPolicy, SourceFile};
use aadedupe_hashing::Fingerprint;
use aadedupe_index::{codec, AppAwareIndex, ChunkEntry};
use aadedupe_metrics::{SessionReport, StageCpu};
use aadedupe_obs::{Counter, Queue, Recorder, Snapshot, Stage, WorkerRole};

use crate::recipe::{ChunkRef, FileRecipe, Manifest};
use crate::restore::{
    container_key, restore_file_pipelined, restore_session_pipelined, RestoreOptions,
    RestoredFile,
};
use crate::retry::RetryPolicy;
use crate::scheme::{BackupError, BackupScheme};
use crate::timing::{DedupClock, DISK_SEEK, SOURCE_READ_BPS};

/// How the engine decides between the serial and the parallel pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Parallel pipeline iff `workers > 1` (the default).
    #[default]
    Auto,
    /// Always the serial path, whatever `workers` says.
    Serial,
    /// Always the parallel pipeline, even with one worker — useful for
    /// exercising the pipeline machinery deterministically in tests.
    Parallel,
}

/// Worker-pool configuration for the backup pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Chunk+hash worker threads (1 = serial under [`PipelineMode::Auto`]).
    pub workers: usize,
    /// Bound on in-flight items per channel: the job queue holds
    /// `workers * queue_depth` file indices and each dedup shard buffers
    /// `queue_depth` chunked files, keeping pipeline memory proportional
    /// to thread count rather than dataset size.
    pub queue_depth: usize,
    /// Serial/parallel selection policy.
    pub mode: PipelineMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { workers: 1, queue_depth: 4, mode: PipelineMode::Auto }
    }
}

impl PipelineConfig {
    /// Pipeline with `workers` threads and default queueing.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig { workers, ..PipelineConfig::default() }
    }

    /// Whether a session should run the parallel pipeline.
    fn parallel(&self) -> bool {
        match self.mode {
            PipelineMode::Auto => self.workers > 1,
            PipelineMode::Serial => false,
            PipelineMode::Parallel => true,
        }
    }
}

/// Engine configuration. Defaults are the paper's evaluation settings.
#[derive(Debug, Clone)]
pub struct AaDedupeConfig {
    /// Files strictly below this size bypass dedup (paper: 10 KiB).
    pub tiny_threshold: u64,
    /// Fixed container size (paper: 1 MiB).
    pub container_size: usize,
    /// Static chunk size (paper: 8 KiB).
    pub sc_chunk_size: usize,
    /// CDC parameters (paper: 2/8/16 KiB, 48-byte window). The
    /// [`CdcParams::algorithm`] field selects the boundary algorithm for
    /// every CDC-routed application (Rabin, the paper's scan and the
    /// fidelity oracle, or gear-hash FastCDC).
    pub cdc: CdcParams,
    /// Per-application CDC overrides, consulted before [`Self::cdc`]: the
    /// first entry matching a file's [`AppType`] wins. Lets one partition
    /// run FastCDC (or different size targets) while the rest keep the
    /// default — each index partition is self-consistent because a given
    /// app always chunks with the same parameters.
    pub cdc_by_app: Vec<(AppType, CdcParams)>,
    /// Chunking/hash policy per category (paper: Fig. 6).
    pub policy: DedupPolicy,
    /// RAM cache entries per index partition (modelled when the index is
    /// RAM-resident, a real write-back cache budget when disk-backed).
    pub ram_entries_per_partition: usize,
    /// Root directory for on-disk index segments. `None` (the default)
    /// keeps every partition RAM-resident with modelled disk accounting;
    /// `Some(dir)` makes partitions spill entries beyond
    /// [`Self::ram_entries_per_partition`] to real segment files under
    /// `dir/p01..p13`, guarded by per-partition existence filters. Dedup
    /// decisions are bit-identical either way — only the RAM/disk stat
    /// classification and the actual memory footprint differ.
    pub index_dir: Option<PathBuf>,
    /// Upload an index snapshot every N sessions (0 disables sync).
    pub index_sync_interval: usize,
    /// Backup pipeline worker-pool settings.
    pub pipeline: PipelineConfig,
    /// Restore pipeline settings (worker threads and the bounded
    /// container-cache size).
    pub restore: RestoreOptions,
    /// Retry/backoff policy for transient backend failures, shared by
    /// uploads and restore downloads.
    pub retry: RetryPolicy,
    /// Cloud namespace prefix for this engine's objects.
    pub scheme_key: String,
    /// Observability sink shared by the engine, index, container store and
    /// chunkers. Disabled by default (one relaxed atomic load per
    /// would-be observation); swap in an enabled [`Recorder`] — or call
    /// `enable()` on this one — to collect per-stage metrics.
    pub recorder: Arc<Recorder>,
}

impl Default for AaDedupeConfig {
    fn default() -> Self {
        AaDedupeConfig {
            tiny_threshold: 10 * 1024,
            container_size: DEFAULT_CONTAINER_SIZE,
            sc_chunk_size: 8 * 1024,
            cdc: DEFAULT_CDC,
            cdc_by_app: Vec::new(),
            policy: DedupPolicy::aa_dedupe(),
            ram_entries_per_partition: 1 << 18,
            index_dir: None,
            index_sync_interval: 1,
            pipeline: PipelineConfig::default(),
            restore: RestoreOptions::default(),
            retry: RetryPolicy::default(),
            scheme_key: "aa-dedupe".into(),
            recorder: Recorder::shared_disabled(),
        }
    }
}

impl AaDedupeConfig {
    /// The effective CDC parameters for `app`: the first matching
    /// [`Self::cdc_by_app`] override, else [`Self::cdc`]. Both the serial
    /// and parallel chunking paths resolve parameters through this single
    /// point, so the pipelines stay bit-identical by construction.
    pub fn cdc_for(&self, app: AppType) -> CdcParams {
        self.cdc_by_app
            .iter()
            .find(|(a, _)| *a == app)
            .map_or(self.cdc, |(_, p)| *p)
    }
}

/// Stream id used for the tiny-file container stream; application streams
/// use the application tag (1..=13).
pub(crate) const TINY_STREAM: u32 = 0;

/// The AA-Dedupe backup client.
///
/// Field visibility is `pub(crate)`: the vacuum pass
/// ([`crate::vacuum`]) and retention policies ([`crate::retention`])
/// are sibling modules operating on the same GC state (refcounts, index
/// placements, container ids) under the same crash-consistency
/// invariants.
pub struct AaDedupe {
    pub(crate) config: AaDedupeConfig,
    pub(crate) cloud: CloudSim,
    pub(crate) index: AppAwareIndex,
    pub(crate) containers: ContainerStore,
    pub(crate) sessions: usize,
    /// Live-chunk count per container (deletion support: a container whose
    /// count reaches zero is removed from the cloud).
    pub(crate) container_live: HashMap<u64, u64>,
    /// Tiny-file incrementality: path -> (change token, last placement).
    /// Tiny files bypass the chunk *index* (the paper's size filter), but
    /// the client still skips re-packing unchanged ones, Cumulus-style.
    /// Not persisted: after [`AaDedupe::open`] the first session re-packs
    /// tiny files once.
    pub(crate) tiny_seen: HashMap<String, (u64, ChunkRef)>,
    /// Set when a session failed mid-upload: the in-memory index may then
    /// reference chunks that never reached the cloud, so further backups
    /// from this instance are refused (reopen from the cloud instead).
    pub(crate) poisoned: Option<String>,
    /// Containers garbage-collected by the orphan sweep in
    /// [`AaDedupe::open`].
    orphans_swept: u64,
    /// Containers left behind by a partially-failed [`delete_session`]:
    /// their manifest is gone (the un-commit succeeded) but their own
    /// delete failed. Retried on the next deletion; the orphan sweep on
    /// reopen reclaims them too.
    ///
    /// [`delete_session`]: AaDedupe::delete_session
    pub(crate) sweep_debt: Vec<u64>,
}

/// The result of chunk+hash over one file.
struct ChunkedFile {
    /// (fingerprint, chunk bytes) in file order.
    chunks: Vec<(Fingerprint, Vec<u8>)>,
    /// CPU time spent producing them.
    cpu: Duration,
}

/// The result of deduplicating one file: its recipe plus the report
/// deltas the merge step folds into the session totals.
struct DedupedFile {
    recipe: FileRecipe,
    stored_bytes: u64,
    chunks_duplicate: u64,
    disk_reads: u64,
    cpu: Duration,
}

/// A placement request sent to the single-writer appender thread.
struct AppendReq {
    stream: u32,
    fp: Fingerprint,
    bytes: Vec<u8>,
    reply: mpsc::Sender<Placement>,
}

/// Chunk + fingerprint one file's bytes according to the policy, via the
/// streaming chunker (identical boundaries to the batch API; each caller
/// builds its own chunker, so worker threads share nothing).
fn chunk_and_hash(
    policy: &DedupPolicy,
    sc_chunk_size: usize,
    cdc: CdcParams,
    app: AppType,
    data: &[u8],
    rec: &Arc<Recorder>,
) -> ChunkedFile {
    let (chunks, cpu) = crate::timing::measure_cpu(|| {
        let (method, hash) = policy.for_app(app);
        StreamChunker::for_method(data, method, sc_chunk_size, cdc)
            .instrumented(Arc::clone(rec))
            .map(|c| {
                let hashing = rec.start();
                let fp = Fingerprint::compute(hash, &c.data);
                rec.record(Stage::Hash, hashing);
                (fp, c.data)
            })
            .collect()
    });
    ChunkedFile { chunks, cpu }
}

/// Deduplicate one chunked file against its application's partition.
/// `append` places a unique chunk and returns where it landed — directly
/// into the [`ContainerStore`] on the serial path, via the appender
/// thread's request channel on the parallel path. The lookup→insert
/// sequence per partition is what both paths execute identically.
fn dedupe_chunks(
    index: &AppAwareIndex,
    path: &str,
    app: AppType,
    chunked: ChunkedFile,
    append: &mut dyn FnMut(Fingerprint, Vec<u8>) -> Placement,
) -> DedupedFile {
    let chunk_cpu = chunked.cpu;
    let (mut deduped, elapsed) = crate::timing::measure_cpu(|| {
        let mut recipe = FileRecipe {
            path: path.to_string(),
            app,
            tiny: false,
            chunks: Vec::with_capacity(chunked.chunks.len()),
        };
        let (mut stored_bytes, mut chunks_duplicate, mut disk_reads) = (0u64, 0u64, 0u64);
        for (fp, bytes) in chunked.chunks {
            let outcome = index.lookup_classified(app, &fp);
            if outcome.touched_disk() {
                disk_reads += 1;
            }
            let reference = match outcome.entry() {
                Some(entry) => {
                    chunks_duplicate += 1;
                    ChunkRef {
                        fingerprint: fp,
                        len: bytes.len() as u32,
                        container: entry.container,
                        offset: entry.offset,
                    }
                }
                None => {
                    let len = bytes.len();
                    let placement = append(fp, bytes);
                    index.insert(
                        app,
                        fp,
                        ChunkEntry::new(len as u64, placement.container, placement.offset),
                    );
                    stored_bytes += len as u64;
                    ChunkRef {
                        fingerprint: fp,
                        len: len as u32,
                        container: placement.container,
                        offset: placement.offset,
                    }
                }
            };
            recipe.chunks.push(reference);
        }
        DedupedFile { recipe, stored_bytes, chunks_duplicate, disk_reads, cpu: Duration::ZERO }
    });
    deduped.cpu = chunk_cpu + elapsed;
    deduped
}

/// The tiny-file path: no chunk-level dedup (the size filter), but
/// unchanged files (same change token) are carried forward by reference
/// instead of re-packed — the Cumulus-style grouping the paper cites for
/// its tiny-file handling. Always runs on the main thread, in file order.
fn pack_tiny(
    tiny_seen: &mut HashMap<String, (u64, ChunkRef)>,
    file: &dyn SourceFile,
    append: &mut dyn FnMut(Fingerprint, Vec<u8>) -> Placement,
    rec: &Recorder,
) -> DedupedFile {
    let app = file.app_type();
    let token = file.change_token();
    if let Some((seen_token, reference)) = tiny_seen.get(file.path()) {
        if *seen_token == token {
            rec.count(Counter::TinyCarried, 1);
            let reference = *reference;
            return DedupedFile {
                recipe: FileRecipe {
                    path: file.path().to_string(),
                    app,
                    tiny: true,
                    chunks: vec![reference],
                },
                stored_bytes: 0,
                chunks_duplicate: 1,
                disk_reads: 0,
                cpu: Duration::ZERO,
            };
        }
    }
    let packing = rec.start();
    rec.count(Counter::TinyPacked, 1);
    let data = file.read();
    rec.count(Counter::SourceBytes, data.len() as u64);
    // Tiny files are fingerprinted only for restore-time integrity
    // (container descriptors need a key); they are not indexed.
    let ((fp, len, placement), cpu) = crate::timing::measure_cpu(|| {
        let fp = Fingerprint::compute(aadedupe_hashing::HashAlgorithm::Sha1, &data);
        let len = data.len();
        let placement = append(fp, data);
        (fp, len, placement)
    });
    let reference = ChunkRef {
        fingerprint: fp,
        len: len as u32,
        container: placement.container,
        offset: placement.offset,
    };
    tiny_seen.insert(file.path().to_string(), (token, reference));
    rec.record(Stage::TinyPack, packing);
    DedupedFile {
        recipe: FileRecipe {
            path: file.path().to_string(),
            app,
            tiny: true,
            chunks: vec![reference],
        },
        stored_bytes: len as u64,
        chunks_duplicate: 0,
        disk_reads: 0,
        cpu,
    }
}

/// Folds one file's dedup outcome into the session totals and the
/// container reference counts, returning the recipe for the manifest.
/// Both pipelines funnel every file through here, in file order.
fn absorb(
    out: DedupedFile,
    report: &mut SessionReport,
    clock: &mut DedupClock,
    container_live: &mut HashMap<u64, u64>,
) -> FileRecipe {
    report.chunks_total += out.recipe.chunks.len() as u64;
    report.chunks_duplicate += out.chunks_duplicate;
    report.stored_bytes += out.stored_bytes;
    report.index_disk_reads += out.disk_reads;
    clock.charge_disk_probes(out.disk_reads);
    clock.add_cpu(out.cpu);
    for c in &out.recipe.chunks {
        *container_live.entry(c.container).or_insert(0) += 1;
    }
    out.recipe
}

impl AaDedupe {
    /// Engine with the paper's default configuration.
    pub fn new(cloud: CloudSim) -> Self {
        Self::with_config(cloud, AaDedupeConfig::default())
    }

    /// Builds an index matching `config`'s storage mode: RAM-resident by
    /// default, disk-backed under [`AaDedupeConfig::index_dir`] when set.
    /// Recovery uses this too, so a rebuilt index keeps the same mode.
    fn build_index(config: &AaDedupeConfig) -> AppAwareIndex {
        let mut index = match &config.index_dir {
            Some(dir) => {
                AppAwareIndex::disk_backed(config.ram_entries_per_partition, dir)
            }
            None => AppAwareIndex::new(config.ram_entries_per_partition),
        };
        index.set_recorder(Arc::clone(&config.recorder));
        index
    }

    /// Engine with an explicit configuration.
    pub fn with_config(cloud: CloudSim, config: AaDedupeConfig) -> Self {
        let index = Self::build_index(&config);
        let mut containers = ContainerStore::new(config.container_size);
        containers.set_recorder(Arc::clone(&config.recorder));
        for app in AppType::ALL {
            config.recorder.label_app(app.tag(), app.to_string());
        }
        AaDedupe {
            index,
            containers,
            sessions: 0,
            container_live: HashMap::new(),
            tiny_seen: HashMap::new(),
            poisoned: None,
            orphans_swept: 0,
            sweep_debt: Vec::new(),
            cloud,
            config,
        }
    }

    /// Opens an engine over an *existing* cloud namespace, resuming its
    /// state: the session counter continues after the last stored
    /// manifest, and the index and per-container reference counts are
    /// rebuilt from the manifests themselves (exact, snapshot-independent).
    /// A fresh namespace yields a fresh engine.
    pub fn open(cloud: CloudSim, config: AaDedupeConfig) -> Result<Self, BackupError> {
        let mut engine = Self::with_config(cloud, config);
        let prefix = format!("{}/manifests/", engine.config.scheme_key);
        let manifest_keys = engine.cloud.store().list(&prefix);
        let mut max_session: Option<u64> = None;
        for key in &manifest_keys {
            let (bytes, _t) = engine.cloud.get(key)?;
            let bytes = bytes.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
            let manifest = Manifest::decode(&bytes)?;
            max_session = Some(max_session.map_or(manifest.session, |m| m.max(manifest.session)));
            for f in &manifest.files {
                for c in &f.chunks {
                    *engine.container_live.entry(c.container).or_insert(0) += 1;
                    if !f.tiny {
                        engine.index.partition(f.app).bump_or_insert(
                            c.fingerprint,
                            ChunkEntry::new(c.len as u64, c.container, c.offset),
                        );
                    }
                }
            }
        }
        engine.sessions = max_session.map_or(0, |m| m as usize + 1);
        // Resume ids over *everything* in the namespace — orphans included —
        // before sweeping, so a resumed engine never re-mints an id that was
        // ever visible in the cloud.
        engine.resume_container_ids();
        engine.sweep_orphan_containers()?;
        Ok(engine)
    }

    /// Garbage-collects containers no manifest references — the leftovers
    /// of sessions that crashed after uploading containers but before the
    /// manifest (the commit point) landed. Safe by construction: a
    /// container becomes reachable only through a committed manifest, and
    /// every committed manifest's containers are in `container_live`.
    fn sweep_orphan_containers(&mut self) -> Result<(), BackupError> {
        let prefix = format!("{}/containers/", self.config.scheme_key);
        for key in self.cloud.store().list(&prefix) {
            let referenced = key
                .rsplit('/')
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|id| self.container_live.contains_key(&id));
            if !referenced {
                self.cloud.delete(&key)?;
                self.orphans_swept += 1;
            }
        }
        self.config.recorder.count(Counter::OrphansSwept, self.orphans_swept);
        Ok(())
    }

    /// Containers the orphan sweep removed when this engine was opened.
    pub fn orphans_swept(&self) -> u64 {
        self.orphans_swept
    }

    /// Whether this engine instance refuses further backups because a
    /// previous session failed mid-upload.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Advances every stream's container sequence past its containers in
    /// the cloud namespace, so resumed engines never clobber live
    /// containers. Ids minted before the per-stream scheme decompose as
    /// stream 0, which only over-advances the tiny stream — harmless.
    fn resume_container_ids(&mut self) {
        let prefix = format!("{}/containers/", self.config.scheme_key);
        for key in self.cloud.store().list(&prefix) {
            if let Some(id) = key.rsplit('/').next().and_then(|s| s.parse::<u64>().ok()) {
                let (stream, seq) = decompose_id(id);
                self.containers.resume_stream_ids(stream, seq + 1);
            }
        }
    }

    /// Sessions currently restorable from the cloud (ascending). Sorted
    /// numerically after parsing — backend listing order is lexicographic
    /// at best and arbitrary in general.
    pub fn list_sessions(&self) -> Vec<usize> {
        let prefix = format!("{}/manifests/", self.config.scheme_key);
        let mut sessions: Vec<usize> = self
            .cloud
            .store()
            .list(&prefix)
            .iter()
            .filter_map(|k| k.rsplit('/').next()?.parse::<usize>().ok())
            .collect();
        sessions.sort_unstable();
        sessions
    }

    /// Restores a single file by path from a past session, fetching only
    /// the containers that file's recipe references.
    pub fn restore_file(&self, session: usize, path: &str) -> Result<RestoredFile, BackupError> {
        restore_file_pipelined(
            &self.cloud,
            &self.config.scheme_key,
            session as u64,
            path,
            &self.config.restore,
            &self.config.retry,
            &self.config.recorder,
        )
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AaDedupeConfig {
        &self.config
    }

    /// The cloud this engine talks to.
    pub fn cloud(&self) -> &CloudSim {
        &self.cloud
    }

    /// The application-aware index (inspection).
    pub fn index(&self) -> &AppAwareIndex {
        &self.index
    }

    /// One session's size filter + chunk + dedup dataflow, serial or
    /// parallel per the pipeline config. Both paths yield identical
    /// manifests, containers, index state, and counters.
    fn run_session(
        &mut self,
        files: &[&dyn SourceFile],
        report: &mut SessionReport,
        clock: &mut DedupClock,
    ) -> Manifest {
        report.files_total += files.len() as u64;
        for f in files {
            report.logical_bytes += f.size();
            if f.size() < self.config.tiny_threshold {
                report.files_tiny += 1;
            }
        }
        self.config.recorder.count(Counter::FilesClassified, files.len() as u64);
        if self.config.pipeline.parallel() {
            self.run_session_parallel(files, report, clock)
        } else {
            self.run_session_serial(files, report, clock)
        }
    }

    /// The serial path: one thread does everything, in file order.
    fn run_session_serial(
        &mut self,
        files: &[&dyn SourceFile],
        report: &mut SessionReport,
        clock: &mut DedupClock,
    ) -> Manifest {
        let mut manifest = Manifest::new(self.sessions as u64);
        let cfg = &self.config;
        let rec = &cfg.recorder;
        let index = &self.index;
        let containers = &mut self.containers;
        let tiny_seen = &mut self.tiny_seen;
        let container_live = &mut self.container_live;
        for file in files {
            let span = rec.trace_start();
            let out = if file.size() < cfg.tiny_threshold {
                pack_tiny(
                    tiny_seen,
                    *file,
                    &mut |fp, bytes| containers.add_chunk(TINY_STREAM, fp, &bytes),
                    rec,
                )
            } else {
                let classify = rec.start();
                let app = file.app_type();
                rec.record(Stage::Classify, classify);
                let data = file.read();
                rec.count(Counter::SourceBytes, data.len() as u64);
                let chunked =
                    chunk_and_hash(&cfg.policy, cfg.sc_chunk_size, cfg.cdc_for(app), app, &data, rec);
                dedupe_chunks(index, file.path(), app, chunked, &mut |fp, bytes| {
                    containers.add_chunk(app.tag() as u32, fp, &bytes)
                })
            };
            rec.trace_complete("file", span);
            manifest.files.push(absorb(out, report, clock, container_live));
        }
        manifest
    }

    /// The parallel pipeline (see the module docs for the dataflow and
    /// the determinism argument).
    fn run_session_parallel(
        &mut self,
        files: &[&dyn SourceFile],
        report: &mut SessionReport,
        clock: &mut DedupClock,
    ) -> Manifest {
        let session = self.sessions as u64;
        let cfg = &self.config;
        let rec = &cfg.recorder;
        let index = &self.index;
        let tiny_seen = &mut self.tiny_seen;
        let container_live = &mut self.container_live;
        let workers = cfg.pipeline.workers.max(1);
        let queue_depth = cfg.pipeline.queue_depth.max(1);
        let tiny_threshold = cfg.tiny_threshold;

        // Big-file indices grouped per application (file order preserved):
        // each group is one shard thread's work list.
        let mut by_app: Vec<Vec<usize>> = AppType::ALL.iter().map(|_| Vec::new()).collect();
        for (i, f) in files.iter().enumerate() {
            if f.size() >= tiny_threshold {
                // aalint: allow(panic-path) -- AppType tags are 1..=ALL.len() by construction; by_app has one slot per variant
                by_app[(f.app_type().tag() - 1) as usize].push(i);
            }
        }
        let big_order: Vec<usize> =
            // aalint: allow(panic-path) -- i ranges over 0..files.len()
            (0..files.len()).filter(|&i| files[i].size() >= tiny_threshold).collect();
        let n_big = big_order.len();

        // The appender thread owns the store for the session's duration.
        let store =
            std::mem::replace(&mut self.containers, ContainerStore::new(cfg.container_size));

        let (job_tx, job_rx) = mpsc::sync_channel::<usize>(workers * queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (append_tx, append_rx) = mpsc::channel::<AppendReq>();
        let (out_tx, out_rx) = mpsc::channel::<(usize, DedupedFile)>();

        // One bounded channel per application shard with work.
        let mut shard_txs: Vec<Option<mpsc::SyncSender<(usize, ChunkedFile)>>> =
            (0..AppType::ALL.len()).map(|_| None).collect();
        let mut shard_rxs: Vec<Option<mpsc::Receiver<(usize, ChunkedFile)>>> =
            (0..AppType::ALL.len()).map(|_| None).collect();
        for (tag_idx, group) in by_app.iter().enumerate() {
            if !group.is_empty() {
                let (tx, rx) = mpsc::sync_channel(queue_depth);
                // aalint: allow(panic-path) -- tag_idx < AppType::ALL.len() = shard_txs.len() via enumerate over by_app
                shard_txs[tag_idx] = Some(tx);
                // aalint: allow(panic-path) -- same enumerate bound as the line above
                shard_rxs[tag_idx] = Some(rx);
            }
        }

        let (mut tiny_out, mut big_out, store) = std::thread::scope(|scope| {
            // Single-writer appender: the only thread touching the store.
            let appender = scope.spawn(move || {
                let mut store = store;
                let (mut busy, mut idle) = (Duration::ZERO, Duration::ZERO);
                loop {
                    let waiting = rec.start();
                    let Ok(req) = append_rx.recv() else { break };
                    rec.queue_pop(Queue::Appender);
                    if let Some(w) = waiting {
                        idle += w.elapsed();
                    }
                    let working = rec.start();
                    let placement = store.add_chunk(req.stream, req.fp, &req.bytes);
                    // aalint: allow(swallowed-result) -- a shard that already panicked dropped its reply receiver; the appender must keep serving the other shards
                    let _ = req.reply.send(placement);
                    if let Some(w) = working {
                        busy += w.elapsed();
                    }
                }
                rec.worker_report(WorkerRole::Appender, 0, busy, idle);
                store
            });

            // Dedup shards: one per application with work; each processes
            // its own files in file order via a reorder buffer.
            for (tag_idx, rx) in shard_rxs.into_iter().enumerate() {
                let Some(rx) = rx else { continue };
                // aalint: allow(panic-path) -- enumerate over shard_rxs, sized to AppType::ALL.len()
                let app = AppType::ALL[tag_idx];
                // aalint: allow(panic-path) -- same enumerate bound as the line above
                let my_files = std::mem::take(&mut by_app[tag_idx]);
                let append_tx = append_tx.clone();
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    let (reply_tx, reply_rx) = mpsc::channel::<Placement>();
                    let mut pending: BTreeMap<usize, ChunkedFile> = BTreeMap::new();
                    let mut next = 0usize;
                    let (mut busy, mut idle) = (Duration::ZERO, Duration::ZERO);
                    while next < my_files.len() {
                        let waiting = rec.start();
                        // aalint: allow(unwrap-in-lib) -- scoped-thread topology: chunk workers hold the senders until every shard drains; closure here is a harness bug worth a loud panic
                        let (i, cf) = rx.recv().expect("workers outlive shard backlog");
                        rec.queue_pop(Queue::Shards);
                        if let Some(w) = waiting {
                            idle += w.elapsed();
                        }
                        let working = rec.start();
                        pending.insert(i, cf);
                        while next < my_files.len() {
                            // aalint: allow(panic-path) -- next < my_files.len() is the loop guard
                            let want = my_files[next];
                            let Some(cf) = pending.remove(&want) else { break };
                            let span = rec.trace_start();
                            let out = dedupe_chunks(
                                index,
                                // aalint: allow(panic-path) -- want came from enumerate over files
                                files[want].path(),
                                app,
                                cf,
                                &mut |fp, bytes| {
                                    rec.queue_push(Queue::Appender);
                                    append_tx
                                        .send(AppendReq {
                                            stream: app.tag() as u32,
                                            fp,
                                            bytes,
                                            reply: reply_tx.clone(),
                                        })
                                        .expect("appender outlives shards"); // aalint: allow(unwrap-in-lib) -- appender joins only after every shard sender drops
                                    reply_rx.recv().expect("appender replies") // aalint: allow(unwrap-in-lib) -- appender replies to every request before servicing the next
                                },
                            );
                            rec.trace_complete("dedupe", span);
                            // aalint: allow(unwrap-in-lib) -- main thread holds out_rx open for the whole scope
                            out_tx.send((want, out)).expect("main collects outcomes");
                            next += 1;
                        }
                        if let Some(w) = working {
                            busy += w.elapsed();
                        }
                    }
                    rec.worker_report(WorkerRole::Shard, tag_idx, busy, idle);
                });
            }
            drop(out_tx); // shards hold the remaining clones

            // Chunk+hash workers: pull file indices, push chunked files to
            // the owning shard.
            for w in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let shard_txs: Vec<Option<mpsc::SyncSender<(usize, ChunkedFile)>>> =
                    shard_txs.clone();
                scope.spawn(move || {
                    let (mut busy, mut idle) = (Duration::ZERO, Duration::ZERO);
                    loop {
                        let waiting = rec.start();
                        // aalint: allow(blocking-under-lock) -- spmc handoff: the mutex exists only to share the receiver; holding it across recv() is the protocol
                        let i = match job_rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv() {
                            Ok(i) => i,
                            Err(_) => break,
                        };
                        rec.queue_pop(Queue::Jobs);
                        if let Some(t) = waiting {
                            idle += t.elapsed();
                        }
                        let working = rec.start();
                        let span = rec.trace_start();
                        // aalint: allow(panic-path) -- i came from enumerate over files, relayed through the job channel
                        let file = files[i];
                        let classify = rec.start();
                        let app = file.app_type();
                        rec.record(Stage::Classify, classify);
                        let data = file.read();
                        rec.count(Counter::SourceBytes, data.len() as u64);
                        let cf = chunk_and_hash(
                            &cfg.policy,
                            cfg.sc_chunk_size,
                            cfg.cdc_for(app),
                            app,
                            &data,
                            rec,
                        );
                        rec.trace_complete("chunk_hash", span);
                        if let Some(t) = working {
                            busy += t.elapsed();
                        }
                        rec.queue_push(Queue::Shards);
                        // aalint: allow(panic-path) -- AppType tags are 1..=ALL.len(); shard_txs has one slot per variant
                        shard_txs[(app.tag() - 1) as usize]
                            .as_ref()
                            .expect("shard exists for routed app") // aalint: allow(unwrap-in-lib) -- a shard thread was spawned for every app with routed work
                            .send((i, cf))
                            .expect("shard outlives its backlog"); // aalint: allow(unwrap-in-lib) -- shard loops until its full backlog arrives, so the receiver cannot close first
                    }
                    rec.worker_report(WorkerRole::Chunker, w, busy, idle);
                });
            }
            drop(shard_txs); // workers hold the remaining clones

            // Feeder: bounded job queue, closed when exhausted.
            scope.spawn(move || {
                for i in big_order {
                    rec.queue_push(Queue::Jobs);
                    if job_tx.send(i).is_err() {
                        return;
                    }
                }
            });

            // Main thread: tiny files in file order, through the appender.
            let mut tiny_out: BTreeMap<usize, DedupedFile> = BTreeMap::new();
            {
                let (reply_tx, reply_rx) = mpsc::channel::<Placement>();
                for (i, file) in files.iter().enumerate() {
                    if file.size() < tiny_threshold {
                        let out = pack_tiny(
                            tiny_seen,
                            *file,
                            &mut |fp, bytes| {
                                rec.queue_push(Queue::Appender);
                                append_tx
                                    .send(AppendReq {
                                        stream: TINY_STREAM,
                                        fp,
                                        bytes,
                                        reply: reply_tx.clone(),
                                    })
                                    .expect("appender outlives tiny packing"); // aalint: allow(unwrap-in-lib) -- append_tx drops only after this loop
                                reply_rx.recv().expect("appender replies") // aalint: allow(unwrap-in-lib) -- appender replies to every request before servicing the next
                            },
                            rec,
                        );
                        tiny_out.insert(i, out);
                    }
                }
            }
            drop(append_tx); // appender exits once shards finish too

            // Collect shard outcomes; the channel closes when every shard
            // has drained its work list.
            let mut big_out: BTreeMap<usize, DedupedFile> = BTreeMap::new();
            for (i, out) in out_rx.iter() {
                big_out.insert(i, out);
            }
            debug_assert_eq!(big_out.len(), n_big);

            // aalint: allow(unwrap-in-lib) -- re-raising an appender panic at scope exit is the intended failure mode
            let store = appender.join().expect("appender thread panicked");
            (tiny_out, big_out, store)
        });
        self.containers = store;

        // Merge in file order — identical to the serial loop.
        let mut manifest = Manifest::new(session);
        for (i, file) in files.iter().enumerate() {
            let out = if file.size() < tiny_threshold {
                tiny_out.remove(&i)
            } else {
                big_out.remove(&i)
            }
            .expect("every file produced an outcome"); // aalint: allow(unwrap-in-lib) -- each file was routed to exactly one of the two outcome maps above
            manifest.files.push(absorb(out, report, clock, container_live));
        }
        manifest
    }

    /// Checks that every container `manifest` references has a live
    /// refcount — the precondition [`release_manifest_refs`] relies on.
    /// Runs *before* the un-commit point so a desynchronised engine (e.g.
    /// one recovered without rebuilding refcounts) surfaces a typed
    /// [`BackupError::Corrupt`] with nothing mutated, instead of the
    /// panic this used to be.
    ///
    /// [`release_manifest_refs`]: AaDedupe::release_manifest_refs
    fn validate_manifest_refs(
        &self,
        session: usize,
        manifest: &Manifest,
    ) -> Result<(), BackupError> {
        for f in &manifest.files {
            for c in &f.chunks {
                if !self.container_live.contains_key(&c.container) {
                    return Err(BackupError::Corrupt(format!(
                        "session {session}: manifest references container {:012} with no \
                         live refcount — in-memory GC state is out of sync with the cloud \
                         (recover or reopen the engine first)",
                        c.container
                    )));
                }
            }
        }
        Ok(())
    }

    /// Drops one manifest's references from the in-memory index and the
    /// per-container refcounts, returning the containers left with no live
    /// chunks. Infallible by design: it runs after the manifest delete —
    /// the un-commit point — so nothing here may abort the deletion
    /// half-done; [`validate_manifest_refs`] establishes the refcount
    /// precondition beforehand. Tiny-file chunks are unindexed, so their
    /// container slots are released directly.
    ///
    /// [`validate_manifest_refs`]: AaDedupe::validate_manifest_refs
    fn release_manifest_refs(&mut self, manifest: &Manifest) -> Vec<u64> {
        let mut dead = Vec::new();
        for f in &manifest.files {
            for c in &f.chunks {
                if !f.tiny {
                    // Tiny chunks are unindexed; indexed chunks drop one
                    // reference (removed from the index at zero).
                    self.index.release(f.app, &c.fingerprint);
                }
                // Validated before the un-commit point; a slot that still
                // vanishes mid-release means the container already hit
                // zero via an earlier reference and was reclaimed below.
                let Some(live) = self.container_live.get_mut(&c.container) else {
                    continue;
                };
                *live = live.saturating_sub(1);
                if *live == 0 {
                    self.container_live.remove(&c.container);
                    dead.push(c.container);
                }
            }
        }
        dead
    }

    /// Deletes a past session and reclaims any containers left without
    /// live references (the background deletion process of §III.F).
    ///
    /// Crash consistency: the *manifest* delete is the un-commit point.
    /// Until it succeeds nothing is mutated — a failure there leaves the
    /// session fully restorable. After it, container reclamation is
    /// best-effort garbage collection: a failed container delete is
    /// recorded as sweep debt (retried on the next deletion; the orphan
    /// sweep in [`AaDedupe::open`] also reclaims it, since a container
    /// unreferenced by every committed manifest is an orphan), never an
    /// error — the inverse order would delete containers a still-committed
    /// manifest references.
    pub fn delete_session(&mut self, session: usize) -> Result<(), BackupError> {
        let key = Manifest::key(&self.config.scheme_key, session as u64);
        let (bytes, _t) = self.cloud.get(&key)?;
        let bytes = bytes.ok_or(BackupError::UnknownSession(session))?;
        let manifest = Manifest::decode(&bytes)?;
        self.validate_manifest_refs(session, &manifest)?;
        self.cloud.delete(&key)?;
        let mut reclaim = std::mem::take(&mut self.sweep_debt);
        reclaim.extend(self.release_manifest_refs(&manifest));
        for id in reclaim {
            if self.cloud.delete(&container_key(&self.config.scheme_key, id)).is_err() {
                self.sweep_debt.push(id);
            }
        }
        Ok(())
    }

    /// Containers whose delete failed during a past [`delete_session`] —
    /// unreferenced garbage awaiting reclamation by the next deletion or
    /// by the orphan sweep on reopen.
    ///
    /// [`delete_session`]: AaDedupe::delete_session
    pub fn sweep_debt(&self) -> &[u64] {
        &self.sweep_debt
    }

    /// Rebuilds the in-memory index from the latest cloud snapshot — the
    /// disaster-recovery path the paper's periodic synchronisation enables.
    ///
    /// The snapshot is only an *accelerator* and can be stale in both
    /// directions: [`delete_session`](AaDedupe::delete_session) never
    /// uploads a fresh one (so it resurrects fingerprints of deleted
    /// chunks, and a backup deduping against them would commit a silently
    /// unrestorable session), and sessions after the last sync are absent
    /// from it. The committed manifests are the source of truth, so after
    /// decoding the snapshot this reconciles every partition against them
    /// — pruning resurrected entries, correcting refcounts and
    /// placements, adding missing entries — and rebuilds the
    /// per-container refcounts exactly as [`AaDedupe::open`] does (without
    /// them, the first post-recovery delete used to die on a refcount
    /// panic).
    pub fn recover_index_from_cloud(&mut self) -> Result<(), BackupError> {
        let keys = self.cloud.store().list(&format!("{}/index/", self.config.scheme_key));
        let latest = keys.last().ok_or_else(|| {
            BackupError::MissingObject(format!("{}/index/*", self.config.scheme_key))
        })?;
        let (bytes, _t) = self.cloud.get(latest)?;
        let bytes = bytes.ok_or_else(|| BackupError::MissingObject(latest.clone()))?;
        // A fresh index in the configured storage mode (disk-backed
        // partitions rebuild their segments and existence filters as the
        // snapshot loads), decoded in place.
        let index = Self::build_index(&self.config);
        codec::decode_app_aware_into(&bytes, &index)
            .map_err(|e| BackupError::Corrupt(format!("index snapshot: {e}")))?;
        self.index = index;

        // Reconcile against the manifests: exact per-app entries (first
        // placement wins, one refcount per reference — the same fold as
        // `open`) and exact per-container live counts.
        let mut live: Vec<BTreeMap<Fingerprint, ChunkEntry>> =
            AppType::ALL.iter().map(|_| BTreeMap::new()).collect();
        let mut container_live: HashMap<u64, u64> = HashMap::new();
        let mut max_session: Option<u64> = None;
        let prefix = format!("{}/manifests/", self.config.scheme_key);
        for key in self.cloud.store().list(&prefix) {
            let (bytes, _t) = self.cloud.get(&key)?;
            let bytes = bytes.ok_or_else(|| BackupError::MissingObject(key.clone()))?;
            let manifest = Manifest::decode(&bytes)?;
            max_session = Some(max_session.map_or(manifest.session, |m| m.max(manifest.session)));
            for f in &manifest.files {
                for c in &f.chunks {
                    *container_live.entry(c.container).or_insert(0) += 1;
                    if !f.tiny {
                        // aalint: allow(panic-path) -- AppType tags are 1..=ALL.len(); live has one map per variant
                        live[(f.app.tag() - 1) as usize]
                            .entry(c.fingerprint)
                            .and_modify(|e| e.refcount = e.refcount.saturating_add(1))
                            .or_insert_with(|| {
                                ChunkEntry::new(c.len as u64, c.container, c.offset)
                            });
                    }
                }
            }
        }
        for (i, app) in AppType::ALL.iter().enumerate() {
            // aalint: allow(panic-path) -- enumerate over AppType::ALL, live is sized to it
            self.index.partition(*app).reconcile(std::mem::take(&mut live[i]));
        }
        self.container_live = container_live;
        // Post-recovery state matches the cloud exactly, so the stale
        // tiny-file cache and the poison flag are cleared (sweep debt is
        // kept: those containers are unreferenced garbage in the cloud
        // whether or not a disaster happened in between); the container
        // store restarts fresh with its ids resumed past every id ever
        // visible in the namespace.
        self.tiny_seen.clear();
        self.poisoned = None;
        let mut containers = ContainerStore::new(self.config.container_size);
        containers.set_recorder(Arc::clone(&self.config.recorder));
        self.containers = containers;
        // The session counter must survive the disaster too: continue after
        // the last committed manifest, exactly as `open` does. Without this
        // the next backup would reuse session 0 and clobber its manifest.
        self.sessions = max_session.map_or(0, |m| m as usize + 1);
        self.resume_container_ids();
        Ok(())
    }
}

impl AaDedupe {
    /// Uploads one object, retrying transient failures under the
    /// configured [`RetryPolicy`] and per-session retry `budget`. Backoff
    /// is charged to the simulated transfer clock (and optionally slept);
    /// `op_seq` feeds the deterministic jitter. Exhausting the attempts or
    /// the budget, or any permanent failure, counts an upload give-up and
    /// surfaces the backend error.
    pub(crate) fn put_with_retry(
        &self,
        key: &str,
        bytes: &[u8],
        budget: &mut u32,
        op_seq: u64,
    ) -> Result<(), BackupError> {
        let rec = &self.config.recorder;
        let policy = &self.config.retry;
        let mut attempt = 1u32;
        loop {
            match self.cloud.put(key, bytes.to_vec()) {
                Ok(_t) => return Ok(()),
                Err(e) if e.transient && attempt < policy.max_attempts.max(1) && *budget > 0 => {
                    *budget -= 1;
                    rec.count(Counter::UploadRetries, 1);
                    let wait = policy.backoff(attempt, op_seq);
                    self.cloud.charge(wait);
                    if policy.sleep && !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    attempt += 1;
                }
                Err(e) => {
                    rec.count(Counter::UploadGiveups, 1);
                    return Err(BackupError::Cloud(format!(
                        "{e} (attempt {attempt} of {})",
                        policy.max_attempts.max(1)
                    )));
                }
            }
        }
    }
}

impl BackupScheme for AaDedupe {
    fn name(&self) -> &'static str {
        "AA-Dedupe"
    }

    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError> {
        if let Some(why) = &self.poisoned {
            return Err(BackupError::Poisoned(why.clone()));
        }
        let mut report = SessionReport::new(self.name(), self.sessions);
        let mut clock = DedupClock::new();
        let rec = Arc::clone(&self.config.recorder);
        // Per-session stage figures come from snapshot deltas: the
        // recorder's histograms are lifetime-cumulative.
        let obs_before: Option<Snapshot> = rec.is_enabled().then(|| rec.snapshot());
        let session_span = rec.trace_start();
        let wan_before = self.cloud.elapsed();
        let puts_before = self.cloud.store().stats();

        let manifest = self.run_session(files, &mut report, &mut clock);
        // Every byte of the dataset is read once from the source disk.
        clock.charge_source_read(report.logical_bytes);

        // Disk-backed index partitions degrade on local IO errors (lookups
        // answer "absent": duplicate storage, never corruption) instead of
        // failing mid-pipeline. An errored session's dedup state is
        // untrustworthy though, so refuse to commit anything to the cloud
        // — and poison the instance, since the in-memory index now holds
        // this session's inserts with nothing committed behind them.
        if let Some(why) = self.index.io_error() {
            self.poisoned = Some(format!("index storage failure: {why}"));
            return Err(BackupError::IndexStorage(why));
        }

        // Commit protocol: containers first (in id order, so the upload
        // sequence does not depend on stream sealing order), then the
        // manifest — the commit point — then the index snapshot. A crash
        // before the manifest leaves only orphan containers, which the
        // sweep in `open` reclaims; a crash after it leaves a fully
        // restorable session.
        self.containers.seal_all();
        let mut sealed = self.containers.drain_sealed();
        sealed.sort_by_key(|s| s.id);
        let upload_span = rec.trace_start();
        let mut retry_budget = self.config.retry.session_retry_budget;
        let mut upload_seq = 0u64;
        for sealed in sealed {
            let uploading = rec.start();
            let key = container_key(&self.config.scheme_key, sealed.id);
            report.transferred_bytes += sealed.bytes.len() as u64;
            rec.count(Counter::UploadBytes, sealed.bytes.len() as u64);
            rec.count(Counter::UploadObjects, 1);
            upload_seq += 1;
            if let Err(e) = self.put_with_retry(&key, &sealed.bytes, &mut retry_budget, upload_seq)
            {
                // The in-memory index already references this session's
                // chunks; some never reached the cloud. Refuse further
                // backups from this instance.
                self.poisoned = Some(format!("container upload failed: {e}"));
                return Err(e);
            }
            rec.record(Stage::Upload, uploading);
        }
        // Ship the manifest — the commit point.
        let uploading = rec.start();
        let mbytes = manifest.encode();
        report.transferred_bytes += mbytes.len() as u64;
        rec.count(Counter::UploadBytes, mbytes.len() as u64);
        rec.count(Counter::UploadObjects, 1);
        upload_seq += 1;
        let mkey = Manifest::key(&self.config.scheme_key, manifest.session);
        if let Err(e) = self.put_with_retry(&mkey, &mbytes, &mut retry_budget, upload_seq) {
            self.poisoned = Some(format!("manifest upload failed: {e}"));
            return Err(e);
        }
        rec.record(Stage::Upload, uploading);
        // Periodic index synchronisation.
        if self.config.index_sync_interval > 0
            && (self.sessions + 1).is_multiple_of(self.config.index_sync_interval)
        {
            let uploading = rec.start();
            let snap = codec::encode_app_aware(&self.index);
            report.transferred_bytes += snap.len() as u64;
            rec.count(Counter::UploadBytes, snap.len() as u64);
            rec.count(Counter::UploadObjects, 1);
            upload_seq += 1;
            let skey = format!("{}/index/{:08}", self.config.scheme_key, self.sessions);
            if let Err(e) = self.put_with_retry(&skey, &snap, &mut retry_budget, upload_seq) {
                // The manifest is committed, so the session is durable and
                // the engine's state matches the cloud; the snapshot is only
                // a recovery accelerator. Count the session and surface the
                // failure without poisoning.
                self.sessions += 1;
                return Err(BackupError::Cloud(format!(
                    "session committed, but index snapshot upload failed: {e}"
                )));
            }
            rec.record(Stage::Upload, uploading);
        }
        rec.trace_complete("upload", upload_span);

        let put_delta = self.cloud.store().stats().put_requests - puts_before.put_requests;
        report.put_requests = put_delta;
        report.dedup_cpu = match obs_before {
            // With the recorder on, dedup CPU is the sum of the measured
            // chunk/hash/index stage times plus the modelled source read
            // and disk-probe charges — same model as DedupClock::total,
            // with the CPU term decomposed per stage.
            Some(before) => {
                let delta = rec.snapshot().delta_since(&before);
                let stage = StageCpu {
                    source_read: Duration::from_secs_f64(
                        report.logical_bytes as f64 / SOURCE_READ_BPS,
                    ),
                    chunk: delta.stage_total(Stage::Chunk),
                    hash: delta.stage_total(Stage::Hash),
                    index: delta.stage_total(Stage::Index)
                        + DISK_SEEK * report.index_disk_reads as u32,
                };
                report.stage_cpu = Some(stage);
                stage.total()
            }
            None => clock.total(),
        };
        report.transfer_time = self.cloud.elapsed() - wan_before;
        rec.trace_complete("session", session_span);
        self.sessions += 1;
        Ok(report)
    }

    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError> {
        restore_session_pipelined(
            &self.cloud,
            &self.config.scheme_key,
            session as u64,
            &self.config.restore,
            &self.config.retry,
            &self.config.recorder,
        )
    }

    fn sessions_completed(&self) -> usize {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadedupe_filetype::MemoryFile;

    fn mem(path: &str, data: Vec<u8>) -> MemoryFile {
        MemoryFile::new(path, data)
    }

    fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
        files.iter().map(|f| f as &dyn SourceFile).collect()
    }

    fn engine() -> AaDedupe {
        AaDedupe::new(CloudSim::with_paper_defaults())
    }

    #[test]
    fn cdc_for_prefers_the_first_matching_override() {
        use aadedupe_chunking::CdcAlgorithm;
        let fast = DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc);
        let cfg = AaDedupeConfig {
            cdc_by_app: vec![(AppType::Doc, fast), (AppType::Doc, DEFAULT_CDC)],
            ..AaDedupeConfig::default()
        };
        assert_eq!(cfg.cdc_for(AppType::Doc).algorithm, CdcAlgorithm::FastCdc);
        assert_eq!(cfg.cdc_for(AppType::Txt).algorithm, CdcAlgorithm::Rabin);
        assert_eq!(cfg.cdc_for(AppType::Txt), cfg.cdc);
    }

    #[test]
    fn fastcdc_engine_round_trips_and_differs_from_rabin() {
        use aadedupe_chunking::CdcAlgorithm;
        let files = vec![
            mem("user/doc/a.doc", b"document text, edited weekly ".repeat(9000)),
            mem("user/txt/b.txt", (0..180_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8).collect()),
        ];
        let mut rabin = engine();
        let cfg = AaDedupeConfig {
            cdc: DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc),
            ..AaDedupeConfig::default()
        };
        let mut fast = AaDedupe::with_config(CloudSim::with_paper_defaults(), cfg);
        let rr = rabin.backup_session(&sources(&files)).unwrap();
        let rf = fast.backup_session(&sources(&files)).unwrap();
        // Different hash families cut at different positions...
        assert_ne!(rr.chunks_total, rf.chunks_total);
        // ...but restores are bit-exact either way.
        assert_eq!(rabin.restore_session(0).unwrap(), fast.restore_session(0).unwrap());
    }

    #[test]
    fn per_app_override_only_reshapes_that_partition() {
        use aadedupe_chunking::CdcAlgorithm;
        // High-entropy doc content: content-defined (not forced) cuts, so
        // the two algorithms produce clearly different chunk counts
        // (Rabin mean ≈ 7.5 KiB, normalized FastCDC mean ≈ 9.5 KiB).
        let mut x = 0x00D0_C5EEDu64;
        let doc: Vec<u8> = (0..600_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let files = vec![
            mem("user/doc/a.doc", doc),
            mem("user/txt/b.txt", (0..180_000u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8).collect()),
        ];
        let mut plain = engine();
        let cfg = AaDedupeConfig {
            cdc_by_app: vec![(AppType::Doc, DEFAULT_CDC.with_algorithm(CdcAlgorithm::FastCdc))],
            ..AaDedupeConfig::default()
        };
        let mut mixed = AaDedupe::with_config(CloudSim::with_paper_defaults(), cfg);
        let rp = plain.backup_session(&sources(&files)).unwrap();
        let rm = mixed.backup_session(&sources(&files)).unwrap();
        // The override re-cuts only the Doc partition; totals shift but the
        // restored bytes cannot.
        assert_ne!(rp.chunks_total, rm.chunks_total);
        assert_eq!(plain.restore_session(0).unwrap(), mixed.restore_session(0).unwrap());
    }

    #[test]
    fn backup_and_restore_round_trip() {
        let mut e = engine();
        let files = vec![
            mem("user/doc/a.doc", b"document text ".repeat(3000)), // dynamic
            mem("user/pdf/b.pdf", vec![7u8; 50_000]),              // static
            mem("user/mp3/c.mp3", (0..60_000u32).map(|i| (i % 251) as u8).collect()), // compressed
            mem("user/tiny/t.txt", b"tiny".to_vec()),              // tiny
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(report.files_total, 4);
        assert_eq!(report.files_tiny, 1);
        assert!(report.logical_bytes > 0);
        assert!(report.transferred_bytes > 0);

        let restored = e.restore_session(0).unwrap();
        assert_eq!(restored.len(), 4);
        for (orig, rest) in files.iter().zip(restored.iter()) {
            assert_eq!(orig.path, rest.path);
            assert_eq!(orig.data, rest.data, "{}", orig.path);
        }
    }

    #[test]
    fn second_identical_session_dedupes_everything() {
        let mut e = engine();
        let files = vec![
            mem("user/doc/a.doc", b"words and words ".repeat(4000)),
            mem("user/exe/b.exe", vec![3u8; 100_000]),
        ];
        let s0 = e.backup_session(&sources(&files)).unwrap();
        let s1 = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(s1.stored_bytes, 0, "identical data stores nothing new");
        assert!(s1.chunks_duplicate >= s0.chunks_total - 1);
        assert!(s1.transferred_bytes < s0.transferred_bytes / 2);
        // Both sessions restore correctly.
        for session in 0..2 {
            let restored = e.restore_session(session).unwrap();
            assert_eq!(restored[0].data, files[0].data);
            assert_eq!(restored[1].data, files[1].data);
        }
    }

    #[test]
    fn policy_routes_by_category() {
        let mut e = engine();
        // A compressed file large enough that SC would make many chunks,
        // but WFC must make exactly one.
        let media = mem("user/avi/m.avi", vec![9u8; 200_000]);
        let report = e.backup_session(&sources(std::slice::from_ref(&media))).unwrap();
        assert_eq!(report.chunks_total, 1, "WFC yields one chunk per file");
        // A static file gets 8 KiB fixed chunks.
        let mut e2 = engine();
        let stat = mem("user/pdf/s.pdf", vec![1u8; 80_000]);
        let r2 = e2.backup_session(&sources(&[stat])).unwrap();
        assert_eq!(r2.chunks_total, 80_000 / 8192 + 1);
    }

    #[test]
    fn tiny_files_bypass_dedup() {
        let mut e = engine();
        // Two identical tiny files: no dedup on the tiny path.
        let files = vec![
            mem("user/tiny/a.txt", b"same tiny content".to_vec()),
            mem("user/tiny/b.txt", b"same tiny content".to_vec()),
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(report.files_tiny, 2);
        assert_eq!(report.chunks_duplicate, 0);
        assert_eq!(report.stored_bytes, 2 * 17);
        // Restore still works.
        let restored = e.restore_session(0).unwrap();
        assert_eq!(restored[0].data, restored[1].data);
    }

    #[test]
    fn intra_session_duplicate_files_dedup() {
        let mut e = engine();
        let payload = vec![0xabu8; 64_000];
        let files = vec![
            mem("user/pdf/one.pdf", payload.clone()),
            mem("user/pdf/two.pdf", payload.clone()),
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert!(report.chunks_duplicate >= report.chunks_total / 2 - 1);
        assert!(report.stored_bytes <= payload.len() as u64 + 8192);
    }

    #[test]
    fn cross_app_identical_content_is_not_shared() {
        // Observation 2's corollary: identical bytes under different app
        // types live in different partitions and are stored twice.
        let mut e = engine();
        // Non-repeating payload so no *intra-file* chunks collide.
        let payload: Vec<u8> = {
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            (0..40_000).map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x >> 32) as u8 }).collect()
        };
        let files = vec![
            mem("user/pdf/a.pdf", payload.clone()),
            mem("user/exe/b.exe", payload.clone()),
        ];
        let report = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(report.chunks_duplicate, 0);
        assert_eq!(report.stored_bytes, 2 * payload.len() as u64);
    }

    #[test]
    fn parallel_workers_match_serial_results() {
        let files: Vec<MemoryFile> = (0..12)
            .map(|i| {
                mem(
                    &format!("user/txt/f{i}.txt"),
                    format!("file number {i} ").repeat(2000 + i * 37).into_bytes(),
                )
            })
            .collect();
        let mut serial = engine();
        let cfg = AaDedupeConfig {
            pipeline: PipelineConfig::with_workers(4),
            ..AaDedupeConfig::default()
        };
        let mut parallel = AaDedupe::with_config(CloudSim::with_paper_defaults(), cfg);

        let rs = serial.backup_session(&sources(&files)).unwrap();
        let rp = parallel.backup_session(&sources(&files)).unwrap();
        assert_eq!(rs.stored_bytes, rp.stored_bytes);
        assert_eq!(rs.chunks_total, rp.chunks_total);
        assert_eq!(rs.chunks_duplicate, rp.chunks_duplicate);
        // Bit-exact restores from both.
        let a = serial.restore_session(0).unwrap();
        let b = parallel.restore_session(0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forced_parallel_mode_single_worker_matches_serial() {
        // PipelineMode::Parallel exercises the full pipeline machinery
        // even with one worker; output must be identical to serial.
        let files = vec![
            mem("user/doc/a.doc", b"mixed workload ".repeat(3000)),
            mem("user/tiny/t.txt", b"wee".to_vec()),
            mem("user/pdf/b.pdf", vec![5u8; 40_000]),
        ];
        let mut serial = engine();
        let cfg = AaDedupeConfig {
            pipeline: PipelineConfig { workers: 1, queue_depth: 1, mode: PipelineMode::Parallel },
            ..AaDedupeConfig::default()
        };
        let mut forced = AaDedupe::with_config(CloudSim::with_paper_defaults(), cfg);
        let rs = serial.backup_session(&sources(&files)).unwrap();
        let rp = forced.backup_session(&sources(&files)).unwrap();
        assert_eq!(rs.stored_bytes, rp.stored_bytes);
        assert_eq!(rs.put_requests, rp.put_requests);
        assert_eq!(serial.restore_session(0).unwrap(), forced.restore_session(0).unwrap());
    }

    #[test]
    fn delete_session_reclaims_fully_dead_containers() {
        let mut e = engine();
        let files0 = vec![mem("user/doc/x.doc", b"version one ".repeat(3000))];
        e.backup_session(&sources(&files0)).unwrap();
        let objects_after_0 = e.cloud().store().object_count();
        // Session 1 with completely different content.
        let files1 = vec![mem("user/doc/y.doc", b"other stuff ".repeat(3000))];
        e.backup_session(&sources(&files1)).unwrap();

        e.delete_session(0).unwrap();
        // Session 0's manifest is gone and its containers reclaimed.
        assert!(e.restore_session(0).is_err());
        let restored = e.restore_session(1).unwrap();
        assert_eq!(restored[0].data, files1[0].data);
        assert!(e.cloud().store().object_count() < objects_after_0 + 4);
    }

    #[test]
    fn delete_preserves_shared_chunks() {
        let mut e = engine();
        let shared = mem("user/doc/s.doc", b"shared bytes ".repeat(4000));
        e.backup_session(&sources(std::slice::from_ref(&shared))).unwrap();
        e.backup_session(&sources(std::slice::from_ref(&shared))).unwrap();
        e.delete_session(0).unwrap();
        // Session 1 references the same chunks; they must survive.
        let restored = e.restore_session(1).unwrap();
        assert_eq!(restored[0].data, shared.data);
    }

    #[test]
    fn index_recovery_from_cloud_snapshot() {
        let mut e = engine();
        let files = vec![mem("user/ppt/p.ppt", b"slide deck ".repeat(5000))];
        e.backup_session(&sources(&files)).unwrap();
        let entries_before = e.index().len();
        assert!(entries_before > 0);
        // Simulate client disk loss.
        e.index = AppAwareIndex::new(e.config.ram_entries_per_partition);
        assert_eq!(e.index().len(), 0);
        e.recover_index_from_cloud().unwrap();
        assert_eq!(e.index().len(), entries_before);
        // Recovered index actually dedupes.
        let r = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(r.stored_bytes, 0);
    }

    #[test]
    fn report_counters_are_consistent() {
        let mut e = engine();
        let files = vec![
            mem("user/txt/a.txt", b"alpha ".repeat(5000)),
            mem("user/tiny/t.txt", b"x".to_vec()),
        ];
        let r = e.backup_session(&sources(&files)).unwrap();
        assert_eq!(r.files_total, 2);
        assert!(r.chunks_duplicate <= r.chunks_total);
        assert!(r.stored_bytes <= r.logical_bytes);
        assert!(r.dr() >= 1.0);
        assert!(r.dedup_cpu > std::time::Duration::ZERO);
        assert!(r.put_requests > 0);
    }
}
