//! The uniform backup-scheme interface.
//!
//! The paper's evaluation sweeps five cloud backup clients — Jungle Disk,
//! BackupPC, Avamar, SAM and AA-Dedupe — over the same workload and
//! reports per-session measurements. [`BackupScheme`] is the contract that
//! makes the sweep uniform: feed a session's files, get a
//! [`SessionReport`](aadedupe_metrics::SessionReport); restore any past
//! session and get verified bytes back.

use aadedupe_filetype::SourceFile;
use aadedupe_metrics::SessionReport;
use std::fmt;

use crate::restore::RestoredFile;

/// Failure modes of backup/restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackupError {
    /// A referenced cloud object is missing.
    MissingObject(String),
    /// An object failed to parse (corrupt container/manifest/index).
    Corrupt(String),
    /// A restored chunk failed fingerprint verification.
    Verification(String),
    /// The requested session was never backed up.
    UnknownSession(usize),
    /// A cloud backend operation failed (after any retries).
    Cloud(String),
    /// A previous session failed mid-upload on this engine instance; its
    /// in-memory state may reference objects that never reached the cloud,
    /// so further backups are refused — reopen the engine from the cloud.
    Poisoned(String),
    /// The disk-backed index hit a local IO error during the session.
    /// Lookups degraded to "absent" (duplicate storage, never corruption),
    /// but the session's dedup accounting can no longer be trusted, so the
    /// commit is refused before anything reaches the cloud.
    IndexStorage(String),
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::MissingObject(k) => write!(f, "missing cloud object {k}"),
            BackupError::Corrupt(what) => write!(f, "corrupt object: {what}"),
            BackupError::Verification(what) => write!(f, "verification failed: {what}"),
            BackupError::UnknownSession(s) => write!(f, "unknown session {s}"),
            BackupError::Cloud(what) => write!(f, "cloud backend failure: {what}"),
            BackupError::Poisoned(what) => {
                write!(f, "engine poisoned by a failed session ({what}); reopen from the cloud")
            }
            BackupError::IndexStorage(what) => {
                write!(f, "disk-backed index storage failure: {what}")
            }
        }
    }
}

impl std::error::Error for BackupError {}

impl From<aadedupe_cloud::BackendError> for BackupError {
    fn from(e: aadedupe_cloud::BackendError) -> Self {
        BackupError::Cloud(e.to_string())
    }
}

/// A cloud backup client strategy.
pub trait BackupScheme {
    /// Scheme name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Runs one full backup session over `files`, uploading whatever the
    /// strategy decides is new, and reports the session's measurements.
    fn backup_session(
        &mut self,
        files: &[&dyn SourceFile],
    ) -> Result<SessionReport, BackupError>;

    /// Restores every file of a past session, verifying integrity.
    fn restore_session(&self, session: usize) -> Result<Vec<RestoredFile>, BackupError>;

    /// Number of completed sessions.
    fn sessions_completed(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            BackupError::MissingObject("containers/3".into()).to_string(),
            "missing cloud object containers/3"
        );
        assert_eq!(BackupError::UnknownSession(4).to_string(), "unknown session 4");
        let e: Box<dyn std::error::Error> = Box::new(BackupError::Corrupt("x".into()));
        assert!(e.to_string().contains("corrupt"));
    }
}
