//! CPU/IO cost accounting for the deduplication stage.
//!
//! Dedup throughput (`DT`) has two components in this reproduction:
//!
//! 1. **Measured CPU time** — chunking and fingerprinting are executed for
//!    real; we accumulate their wall-clock time (single-threaded work, so
//!    wall ≈ CPU).
//! 2. **Modelled index I/O** — the paper's on-disk index bottleneck. Our
//!    indexes run in memory but classify each lookup as RAM or disk
//!    (see [`aadedupe_index`]); every modelled disk probe is charged a
//!    fixed seek time. This is what makes a monolithic full index slow and
//!    the application-aware small indices fast, reproducing Fig. 8's
//!    ordering on hardware that no longer has a 2010 laptop disk.

use std::time::{Duration, Instant};

/// Seek time charged per modelled on-disk index probe. 2010-era laptop
/// 2.5" disks seek in 10-15 ms; production dedup clients amortise heavily
/// with write buffers and locality-aware caches, so we charge 1 ms per
/// probe that misses the RAM-resident working set.
pub const DISK_SEEK: Duration = Duration::from_millis(1);

/// Modelled sequential read throughput of the client's source disk. Every
/// scheme must read the dataset once per session; on the paper's 2010
/// laptop that stream is part of the measured dedup throughput, so we
/// charge it uniformly (80 MB/s: a 2.5" SATA disk of the era).
pub const SOURCE_READ_BPS: f64 = 80.0 * 1024.0 * 1024.0;

/// Runs `f` and returns its result together with its measured wall time.
/// This is the one sanctioned wall-clock read on the dedup path: every
/// CPU-time measurement in the engine routes through here, and the
/// duration feeds throughput accounting (`DT`) only — it never influences
/// chunk boundaries, fingerprints, index placement, or container layout.
pub fn measure_cpu<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    // aalint: allow(nondeterministic-time) -- throughput accounting only; the duration is reported, never branched on by dedup decisions
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Accumulates the dedup stage's cost.
#[derive(Debug, Clone, Default)]
pub struct DedupClock {
    cpu: Duration,
    disk_probes: u64,
    read_bytes: u64,
}

impl DedupClock {
    /// New, zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, adding its wall time to the CPU account.
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let (out, elapsed) = measure_cpu(f);
        self.cpu += elapsed;
        out
    }

    /// Adds externally measured CPU time (from pipeline worker threads).
    pub fn add_cpu(&mut self, d: Duration) {
        self.cpu += d;
    }

    /// Charges `n` modelled disk probes.
    pub fn charge_disk_probes(&mut self, n: u64) {
        self.disk_probes += n;
    }

    /// Charges the sequential source-disk read of `bytes` of input data.
    pub fn charge_source_read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
    }

    /// Measured CPU time.
    pub fn cpu(&self) -> Duration {
        self.cpu
    }

    /// Number of charged disk probes.
    pub fn disk_probes(&self) -> u64 {
        self.disk_probes
    }

    /// Total dedup-stage time: CPU plus modelled seeks plus the modelled
    /// sequential read of the source data.
    pub fn total(&self) -> Duration {
        self.cpu
            + DISK_SEEK * self.disk_probes as u32
            + Duration::from_secs_f64(self.read_bytes as f64 / SOURCE_READ_BPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_accumulates() {
        let mut c = DedupClock::new();
        let v = c.measure(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(c.cpu() >= Duration::from_millis(5));
    }

    #[test]
    fn disk_probes_charged_at_seek_time() {
        let mut c = DedupClock::new();
        c.charge_disk_probes(10);
        assert_eq!(c.disk_probes(), 10);
        assert_eq!(c.total() - c.cpu(), DISK_SEEK * 10);
    }

    #[test]
    fn source_reads_charged_at_disk_rate() {
        let mut c = DedupClock::new();
        c.charge_source_read(80 * 1024 * 1024);
        assert!((c.total().as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_cpu_from_workers() {
        let mut c = DedupClock::new();
        c.add_cpu(Duration::from_millis(7));
        c.add_cpu(Duration::from_millis(3));
        assert_eq!(c.cpu(), Duration::from_millis(10));
    }
}
