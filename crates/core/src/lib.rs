#![forbid(unsafe_code)]
//! The AA-Dedupe engine (paper §III, Fig. 5).
//!
//! The backup path implements the architecture of the paper's Fig. 5:
//!
//! ```text
//! files ──► file size filter ──► intelligent chunker ──► deduplicator
//!              │ (<10 KiB)          (WFC/SC/CDC by         (app-aware
//!              ▼                     category)              index)
//!        tiny-file packer ─────────────────────────────► container
//!                                                         management ──► cloud
//! ```
//!
//! * [`engine::AaDedupe`] — the scheme itself: application-aware chunking,
//!   adaptive hashing, per-application index partitions, container
//!   aggregation, pipelined chunk+hash workers, periodic index sync.
//! * [`scheme::BackupScheme`] — the uniform interface every scheme in the
//!   workspace implements, so the evaluation harness can sweep all five.
//! * [`recipe`] — file recipes and the per-session manifest format that
//!   both AA-Dedupe and the baselines persist to the cloud.
//! * [`restore`] — manifest-driven restore with fingerprint verification.
//! * [`timing`] — cost model for CPU work (measured) and index disk probes
//!   (modelled).

pub mod engine;
pub mod recipe;
pub mod restore;
pub mod retention;
pub mod retry;
pub mod scheme;
pub mod timing;
pub mod vacuum;

pub use engine::{AaDedupe, AaDedupeConfig, PipelineConfig, PipelineMode};
pub use recipe::{ChunkRef, FileRecipe, Manifest};
pub use restore::{
    restore_file_pipelined, restore_session, restore_session_pipelined, RestoreOptions,
    RestoredFile,
};
pub use retention::{RetentionPolicy, RetentionReport};
pub use retry::RetryPolicy;
pub use scheme::{BackupError, BackupScheme};
pub use vacuum::{VacuumOptions, VacuumReport};
