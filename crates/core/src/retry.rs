//! Transfer retry policy: bounded exponential backoff with deterministic
//! jitter and a per-session retry budget. Uploads and restore downloads
//! share it — a flaky endpoint looks the same from both directions.
//!
//! The engine retries only failures the backend classifies as
//! *transient* ([`BackendError::transient`]); permanent failures abort
//! immediately. Backoff doubles per attempt up to a cap, with "equal
//! jitter" (half fixed, half seeded hash) so concurrent clients don't
//! thundering-herd a recovering endpoint — yet the same seed and attempt
//! sequence always produces the same waits, keeping fault-drill tests
//! exactly reproducible. The per-session budget bounds the total time a
//! backup (or a restore — each restore call gets a fresh budget, shared
//! across its fetch workers) can spend retrying before it gives up and
//! reports failure.
//!
//! [`BackendError::transient`]: aadedupe_cloud::BackendError

use std::time::Duration;

/// Retry/backoff settings for cloud transfers (uploads and restore
/// downloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per object (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Total retries a single session may spend across all transfers
    /// (each restore call draws on its own fresh budget).
    pub session_retry_budget: u32,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
    /// Whether to really sleep between attempts. The backoff is always
    /// charged to the simulated transfer clock; real sleeping matters only
    /// when the backend is a live endpoint (the CLI), not in simulation.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            session_retry_budget: 64,
            jitter_seed: 0xaade_d09e,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every transient failure is fatal).
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1, session_retry_budget: 0, ..RetryPolicy::default() }
    }

    /// The wait before retry number `attempt` (1-based) of transfer number
    /// `op`: exponential in `attempt`, half of it jittered by a hash of
    /// `(jitter_seed, op, attempt)` — deterministic for a fixed seed.
    pub fn backoff(&self, attempt: u32, op: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_backoff);
        let half = exp / 2;
        let jitter_room = half.as_nanos().min(u64::MAX as u128) as u64;
        if jitter_room == 0 {
            return exp;
        }
        let h = splitmix64(self.jitter_seed ^ op.rotate_left(17) ^ attempt as u64);
        half + Duration::from_nanos(h % (jitter_room + 1))
    }
}

/// splitmix64 — deterministic bit mixer for the jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            ..RetryPolicy::default()
        };
        for op in 0..20 {
            let mut prev = Duration::ZERO;
            for attempt in 1..=6 {
                let d = p.backoff(attempt, op);
                let exp = p.base_backoff.saturating_mul(1 << (attempt - 1)).min(p.max_backoff);
                assert!(d >= exp / 2, "attempt {attempt}: {d:?} < half of {exp:?}");
                assert!(d <= exp, "attempt {attempt}: {d:?} > {exp:?}");
                assert!(d >= prev / 4, "never collapses");
                prev = d;
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(2, 5), p.backoff(2, 5));
        let q = RetryPolicy { jitter_seed: p.jitter_seed + 1, ..p };
        // Different seeds almost surely differ somewhere in a small sweep.
        let differs = (0..16).any(|op| p.backoff(2, op) != q.backoff(2, op));
        assert!(differs);
    }

    #[test]
    fn zero_base_backoff_is_zero_wait() {
        let p = RetryPolicy { base_backoff: Duration::ZERO, ..RetryPolicy::default() };
        assert_eq!(p.backoff(1, 0), Duration::ZERO);
        assert_eq!(p.backoff(5, 3), Duration::ZERO);
    }

    #[test]
    fn no_retries_policy() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.session_retry_budget, 0);
    }
}
