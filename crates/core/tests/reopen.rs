//! Engine state resumption: `AaDedupe::open` over an existing namespace.

use aadedupe_cloud::CloudSim;
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme};
use aadedupe_filetype::{MemoryFile, SourceFile};

fn sources(files: &[MemoryFile]) -> Vec<&dyn SourceFile> {
    files.iter().map(|f| f as &dyn SourceFile).collect()
}

fn week(version: u8) -> Vec<MemoryFile> {
    vec![
        MemoryFile::new("user/doc/a.doc", vec![version; 60_000]),
        MemoryFile::new("user/pdf/shared.pdf", b"stable across versions ".repeat(2000)),
        MemoryFile::new("user/tiny/t.txt", vec![version; 100]),
    ]
}

#[test]
fn open_on_fresh_namespace_is_a_fresh_engine() {
    let cloud = CloudSim::with_paper_defaults();
    let engine = AaDedupe::open(cloud, AaDedupeConfig::default()).expect("open");
    assert_eq!(engine.sessions_completed(), 0);
    assert_eq!(engine.index().len(), 0);
    assert!(engine.list_sessions().is_empty());
}

#[test]
fn open_resumes_sessions_and_dedup_state() {
    let cloud = CloudSim::with_paper_defaults();
    let mut first = AaDedupe::new(cloud.clone());
    let w0 = week(1);
    let w1 = week(2);
    first.backup_session(&sources(&w0)).expect("s0");
    let r1 = first.backup_session(&sources(&w1)).expect("s1");
    // The unchanged PDF deduped in session 1.
    assert!(r1.chunks_duplicate > 0);
    let index_len = first.index().len();
    drop(first);

    // Reopen from the cloud alone.
    let mut reopened = AaDedupe::open(cloud, AaDedupeConfig::default()).expect("open");
    assert_eq!(reopened.sessions_completed(), 2);
    assert_eq!(reopened.list_sessions(), vec![0, 1]);
    assert_eq!(reopened.index().len(), index_len, "index rebuilt from manifests");

    // A third session over week-2 data dedupes fully against resumed state.
    let r2 = reopened.backup_session(&sources(&w1)).expect("s2");
    // Only the tiny file (which bypasses the index by design) re-stores.
    assert_eq!(r2.stored_bytes, 100, "resumed index must recognise all indexed chunks");

    // Deletion works on resumed reference counts: drop the two old
    // sessions; session 2 must survive with the shared PDF intact.
    reopened.delete_session(0).expect("delete 0");
    reopened.delete_session(1).expect("delete 1");
    let restored = reopened.restore_session(2).expect("restore 2");
    let pdf = restored.iter().find(|f| f.path.ends_with("shared.pdf")).expect("pdf");
    assert_eq!(pdf.data, w1[1].data);
}

#[test]
fn restore_file_fetches_single_path() {
    let cloud = CloudSim::with_paper_defaults();
    let mut engine = AaDedupe::new(cloud);
    let files = week(3);
    engine.backup_session(&sources(&files)).expect("backup");
    let got = engine.restore_file(0, "user/doc/a.doc").expect("restore_file");
    assert_eq!(got.data, files[0].data);
    assert!(engine.restore_file(0, "user/doc/missing.doc").is_err());
    assert!(engine.restore_file(9, "user/doc/a.doc").is_err());
}

#[test]
fn open_tolerates_index_sync_disabled() {
    // open() rebuilds from manifests, so it must work even when snapshots
    // were never uploaded.
    let cloud = CloudSim::with_paper_defaults();
    let config = AaDedupeConfig { index_sync_interval: 0, ..AaDedupeConfig::default() };
    let mut engine = AaDedupe::with_config(cloud.clone(), config.clone());
    let files = week(4);
    engine.backup_session(&sources(&files)).expect("backup");
    drop(engine);

    let mut reopened = AaDedupe::open(cloud, config).expect("open");
    assert_eq!(reopened.sessions_completed(), 1);
    let r = reopened.backup_session(&sources(&files)).expect("s1");
    assert_eq!(r.stored_bytes, 100, "only the tiny file re-stores");
}
