//! Property-based tests for the core engine and recipe format.

use proptest::prelude::*;

use aadedupe_cloud::CloudSim;
use aadedupe_core::recipe::{ChunkRef, FileRecipe, Manifest};
use aadedupe_core::{AaDedupe, AaDedupeConfig, BackupScheme, PipelineConfig};
use aadedupe_filetype::{AppType, MemoryFile, SourceFile};
use aadedupe_hashing::{Fingerprint, HashAlgorithm};

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    let chunk = (any::<u8>(), 0u32..1_000_000, any::<u64>(), any::<u32>(), 0usize..3).prop_map(
        |(seed, len, container, offset, algo)| {
            let algo = [HashAlgorithm::Rabin96, HashAlgorithm::Md5, HashAlgorithm::Sha1][algo];
            ChunkRef {
                fingerprint: Fingerprint::compute(algo, &[seed]),
                len,
                container,
                offset,
            }
        },
    );
    let file = ("[a-zA-Z0-9/_.]{1,40}", 0usize..13, any::<bool>(), proptest::collection::vec(chunk, 0..10))
        .prop_map(|(path, app_i, tiny, chunks)| FileRecipe {
            path,
            app: AppType::ALL[app_i],
            tiny,
            chunks,
        });
    (any::<u64>(), proptest::collection::vec(file, 0..12))
        .prop_map(|(session, files)| Manifest { session, files })
}

proptest! {
    /// Manifest encode/decode is the identity.
    #[test]
    fn manifest_round_trip(m in arb_manifest()) {
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, m);
    }

    /// The manifest decoder is total on garbage.
    #[test]
    fn manifest_decoder_total(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Manifest::decode(&garbage);
    }

    /// Engine identity: restore(backup(files)) == files for arbitrary
    /// small file sets across mixed app types, tiny and empty files
    /// included, under serial and parallel chunk workers.
    #[test]
    fn engine_round_trip(
        contents in proptest::collection::vec(
            ("[a-z]{1,6}", 0usize..6, proptest::collection::vec(any::<u8>(), 0..30_000)),
            1..6
        ),
        workers in 1usize..4,
    ) {
        let exts = ["txt", "doc", "pdf", "mp3", "vmdk", "avi"];
        let mut files: Vec<MemoryFile> = contents
            .into_iter()
            .enumerate()
            .map(|(i, (stem, e, data))| MemoryFile::new(format!("u/{stem}{i}.{}", exts[e]), data))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        files.dedup_by(|a, b| a.path == b.path);

        let config = AaDedupeConfig {
            pipeline: PipelineConfig::with_workers(workers),
            ..AaDedupeConfig::default()
        };
        let mut engine = AaDedupe::with_config(CloudSim::with_paper_defaults(), config);
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        let report = engine.backup_session(&sources).expect("backup");
        prop_assert_eq!(report.files_total as usize, files.len());

        let restored = engine.restore_session(0).expect("restore");
        prop_assert_eq!(restored.len(), files.len());
        for (orig, rest) in files.iter().zip(&restored) {
            prop_assert_eq!(&orig.path, &rest.path);
            prop_assert_eq!(&orig.data, &rest.data);
        }
    }

    /// Report invariants hold for arbitrary inputs: stored ≤ logical,
    /// duplicates ≤ total chunks, DR ≥ 1.
    #[test]
    fn report_invariants(
        contents in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..20_000), 1..5
        ),
    ) {
        let files: Vec<MemoryFile> = contents
            .into_iter()
            .enumerate()
            .map(|(i, data)| MemoryFile::new(format!("f{i}.doc"), data))
            .collect();
        let mut engine = AaDedupe::new(CloudSim::with_paper_defaults());
        let sources: Vec<&dyn SourceFile> = files.iter().map(|f| f as &dyn SourceFile).collect();
        let r = engine.backup_session(&sources).expect("backup");
        prop_assert!(r.stored_bytes <= r.logical_bytes);
        prop_assert!(r.chunks_duplicate <= r.chunks_total);
        prop_assert!(r.dr() >= 1.0);
        prop_assert!(r.transferred_bytes >= r.stored_bytes || r.stored_bytes == 0);
    }

    /// Sessions are independent of file iteration order for dedup totals
    /// (stored bytes), because the index is content-addressed.
    #[test]
    fn stored_bytes_order_independent(
        contents in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 12_000..20_000), 2..5
        ),
    ) {
        let files: Vec<MemoryFile> = contents
            .into_iter()
            .enumerate()
            .map(|(i, data)| MemoryFile::new(format!("f{i}.pdf"), data))
            .collect();
        let run = |order: Vec<&MemoryFile>| {
            let mut engine = AaDedupe::new(CloudSim::with_paper_defaults());
            let sources: Vec<&dyn SourceFile> =
                order.iter().map(|f| *f as &dyn SourceFile).collect();
            engine.backup_session(&sources).expect("backup").stored_bytes
        };
        let forward = run(files.iter().collect());
        let backward = run(files.iter().rev().collect());
        prop_assert_eq!(forward, backward);
    }
}
