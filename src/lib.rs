#![forbid(unsafe_code)]
//! # AA-Dedupe
//!
//! A Rust reproduction of **"AA-Dedupe: An Application-Aware Source
//! Deduplication Approach for Cloud Backup Services in the Personal
//! Computing Environment"** (Fu, Jiang, Xiao, Tian, Liu — IEEE CLUSTER
//! 2011).
//!
//! This façade crate re-exports the workspace members under stable module
//! names so downstream users can depend on `aa-dedupe` alone:
//!
//! * [`hashing`] — MD5, SHA-1 and Rabin fingerprints, implemented from
//!   scratch.
//! * [`chunking`] — whole-file (WFC), static (SC) and content-defined (CDC)
//!   chunking.
//! * [`filetype`] — application/file-type classification and the
//!   per-category dedup policy table.
//! * [`index`] — monolithic and application-aware chunk indexes.
//! * [`container`] — self-describing 1 MiB chunk containers.
//! * [`cloud`] — simulated cloud object store, WAN model and S3-style cost
//!   accounting.
//! * [`metrics`] — dedup efficiency, backup-window, cost and energy models.
//! * [`obs`] — structured tracing, per-stage latency histograms and
//!   pipeline profiling for the backup engine.
//! * [`workload`] — synthetic PC backup workload generator calibrated to the
//!   paper's published dataset statistics.
//! * [`core`] — the AA-Dedupe engine itself (file size filter, intelligent
//!   chunker, application-aware deduplicator, pipelined backup, restore).
//! * [`baselines`] — clean-room reimplementations of the paper's comparison
//!   schemes: Jungle Disk, BackupPC, Avamar and SAM.
//!
//! ## Quickstart
//!
//! ```
//! use aa_dedupe::core::{AaDedupe, BackupScheme};
//! use aa_dedupe::cloud::CloudSim;
//! use aa_dedupe::workload::{DatasetSpec, Generator};
//!
//! // A small synthetic PC dataset (two weekly snapshots).
//! let mut generator = Generator::new(DatasetSpec::tiny_test(), 42);
//! let week0 = generator.snapshot(0);
//!
//! // Back it up with AA-Dedupe into a simulated cloud.
//! let cloud = CloudSim::with_paper_defaults();
//! let mut scheme = AaDedupe::new(cloud);
//! let report = scheme.backup_session(&week0.as_sources()).unwrap();
//! assert!(report.stored_bytes <= report.logical_bytes);
//! ```

pub use aadedupe_baselines as baselines;
pub use aadedupe_chunking as chunking;
pub use aadedupe_cloud as cloud;
pub use aadedupe_container as container;
pub use aadedupe_core as core;
pub use aadedupe_filetype as filetype;
pub use aadedupe_hashing as hashing;
pub use aadedupe_index as index;
pub use aadedupe_metrics as metrics;
pub use aadedupe_obs as obs;
pub use aadedupe_workload as workload;
